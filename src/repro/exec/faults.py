"""Deterministic fault injection for chaos-testing the exec tier.

The ``REPRO_FAULTS`` environment variable carries a :class:`FaultSpec`:
a comma-separated list of ``key=value`` directives describing faults to
inject into plan execution.  Because the variable is inherited by the
runner's worker processes, one spec drives the whole fleet.

Grammar (all keys optional, list keys repeatable)::

    seed=42                  # identifies the chaos scenario; feeds pick_cells
    ledger=DIR               # cross-process once-only accounting (required
                             # whenever any fault op below is present)
    kill_after=N             # a worker process exits hard after completing
    kill_times=K             #   N cells; fires in at most K workers (def. 1)
    raise_cell=PREFIX        # cells whose digest starts with PREFIX raise
    raise_times=K            #   FaultInjection; at most K firings per prefix
    stall_cell=PREFIX        # matching cells sleep stall_seconds before
    stall_seconds=S          #   running (exercises cell timeouts)
    stall_times=K
    truncate_cell=PREFIX     # the store entry of a matching cell is
                             # truncated right after its atomic write lands
                             # (a simulated torn write; once per prefix)
    heartbeat_delay=S        # every lease heartbeat sleeps S seconds first

Determinism: *which* cells a chaos scenario hits is chosen up front with
:func:`pick_cells` (a seeded hash ranking over the plan's cell digests),
and every firing is capped through the on-disk ledger, so a faulted run
recovers to results bit-identical to the fault-free run — the per-cell
simulations themselves are pure functions of their configs and cannot
observe the faults.  Race winners (which worker dies, which attempt of a
retried cell raises) may vary between replays; the *recovered results*
never do, and that is the property the chaos tests pin.

Worker death (``kill_after``) only fires inside pool worker processes
(``multiprocessing.parent_process() is not None``), never in the
coordinating process, so a serial ``jobs=1`` run with a kill spec set is
not terminated.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pathlib
import time
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, FaultInjection

__all__ = ["ENV_VAR", "FaultInjector", "FaultSpec", "pick_cells"]

#: environment variable the injector reads its spec from.
ENV_VAR = "REPRO_FAULTS"

#: exit status of a worker killed by ``kill_after`` (distinctive in logs).
KILL_EXIT_CODE = 170


def pick_cells(
    digests: Iterable[str], *, seed: int, count: int = 1
) -> list[str]:
    """Deterministically pick *count* victim cells out of *digests*.

    Ranks the digests by ``sha256(f"{seed}:{digest}")`` — stable across
    machines and independent of iteration order — so a chaos scenario is
    fully described by ``(plan, seed, count)``.
    """
    ranked = sorted(
        set(digests),
        key=lambda d: hashlib.sha256(f"{seed}:{d}".encode()).hexdigest(),
    )
    return ranked[:count]


@dataclass(frozen=True)
class FaultSpec:
    """Parsed form of a ``REPRO_FAULTS`` directive string."""

    seed: int = 0
    ledger: str | None = None
    kill_after: int | None = None
    kill_times: int = 1
    raise_cells: tuple[str, ...] = ()
    raise_times: int = 1
    stall_cells: tuple[str, ...] = ()
    stall_seconds: float = 5.0
    stall_times: int = 1
    truncate_cells: tuple[str, ...] = ()
    heartbeat_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.kill_after is not None and self.kill_after < 1:
            raise ConfigurationError(f"kill_after must be >= 1, got {self.kill_after}")
        for name in ("kill_times", "raise_times", "stall_times"):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be >= 1")
        if self.stall_seconds < 0 or self.heartbeat_delay < 0:
            raise ConfigurationError("fault delays must be >= 0")
        capped = (
            self.kill_after is not None
            or self.raise_cells
            or self.stall_cells
            or self.truncate_cells
        )
        if capped and not self.ledger:
            raise ConfigurationError(
                "REPRO_FAULTS with kill/raise/stall/truncate ops needs "
                "ledger=DIR: firings are capped through on-disk claim "
                "files so retried cells and rebuilt workers do not "
                "re-inject the same fault forever"
            )

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse the ``REPRO_FAULTS`` grammar (see module docstring)."""
        kwargs: dict = {}
        lists: dict[str, list[str]] = {
            "raise_cells": [],
            "stall_cells": [],
            "truncate_cells": [],
        }
        singular = {
            "raise_cell": "raise_cells",
            "stall_cell": "stall_cells",
            "truncate_cell": "truncate_cells",
        }
        ints = {
            "seed",
            "kill_after",
            "kill_times",
            "raise_times",
            "stall_times",
        }
        floats = {"stall_seconds", "heartbeat_delay"}
        for token in (t.strip() for t in text.split(",")):
            if not token:
                continue
            key, sep, value = token.partition("=")
            if not sep or not value:
                raise ConfigurationError(
                    f"REPRO_FAULTS directive must be key=value, got {token!r}"
                )
            if key in singular:
                lists[singular[key]].append(value)
            elif key in ints:
                try:
                    kwargs[key] = int(value)
                except ValueError:
                    raise ConfigurationError(
                        f"REPRO_FAULTS {key}= needs an integer, got {value!r}"
                    ) from None
            elif key in floats:
                try:
                    kwargs[key] = float(value)
                except ValueError:
                    raise ConfigurationError(
                        f"REPRO_FAULTS {key}= needs a number, got {value!r}"
                    ) from None
            elif key == "ledger":
                kwargs[key] = value
            else:
                raise ConfigurationError(f"unknown REPRO_FAULTS directive {key!r}")
        for name, values in lists.items():
            if values:
                kwargs[name] = tuple(values)
        return cls(**kwargs)

    def to_env(self) -> str:
        """Serialize back to the ``REPRO_FAULTS`` grammar (round-trips)."""
        parts: list[str] = [f"seed={self.seed}"]
        if self.ledger:
            parts.append(f"ledger={self.ledger}")
        if self.kill_after is not None:
            parts.append(f"kill_after={self.kill_after}")
            parts.append(f"kill_times={self.kill_times}")
        for prefix in self.raise_cells:
            parts.append(f"raise_cell={prefix}")
        if self.raise_cells:
            parts.append(f"raise_times={self.raise_times}")
        for prefix in self.stall_cells:
            parts.append(f"stall_cell={prefix}")
        if self.stall_cells:
            parts.append(f"stall_seconds={self.stall_seconds}")
            parts.append(f"stall_times={self.stall_times}")
        for prefix in self.truncate_cells:
            parts.append(f"truncate_cell={prefix}")
        if self.heartbeat_delay:
            parts.append(f"heartbeat_delay={self.heartbeat_delay}")
        return ",".join(parts)


@dataclass
class FaultInjector:
    """Runtime hooks the exec tier calls at its fault points.

    Instantiated from the environment once per process (and cached), so
    the per-worker cell counter behind ``kill_after`` survives across
    cells executed by the same pool worker.
    """

    spec: FaultSpec
    _cells_done: int = field(default=0, repr=False)

    def _claim(self, slot: str, times: int) -> bool:
        """Claim one of *times* firing slots for *slot* (exactly-once).

        Claim files are created with ``O_EXCL`` in the shared ledger
        directory, so concurrent workers racing for the same fault agree
        on who fires it.
        """
        ledger = pathlib.Path(self.spec.ledger)
        ledger.mkdir(parents=True, exist_ok=True)
        for i in range(times):
            try:
                fd = os.open(
                    ledger / f"{slot}.{i}", os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                continue
            os.close(fd)
            return True
        return False

    # -- hooks ---------------------------------------------------------------
    def on_cell_start(self, digest: str) -> None:
        """Called before a cell simulates: may raise or stall."""
        for prefix in self.spec.raise_cells:
            if digest.startswith(prefix) and self._claim(
                f"raise-{prefix}", self.spec.raise_times
            ):
                raise FaultInjection(
                    f"injected failure in cell {digest[:12]}… (REPRO_FAULTS)"
                )
        for prefix in self.spec.stall_cells:
            if digest.startswith(prefix) and self._claim(
                f"stall-{prefix}", self.spec.stall_times
            ):
                time.sleep(self.spec.stall_seconds)

    def on_cell_end(self, digest: str) -> None:
        """Called after a cell simulates: may kill this worker process."""
        self._cells_done += 1
        if (
            self.spec.kill_after is not None
            and self._cells_done >= self.spec.kill_after
            and multiprocessing.parent_process() is not None
            and self._claim("kill", self.spec.kill_times)
        ):
            os._exit(KILL_EXIT_CODE)

    def on_store_write(self, path: pathlib.Path, digest: str) -> None:
        """Called after a store entry lands: may truncate it (torn write)."""
        for prefix in self.spec.truncate_cells:
            if digest.startswith(prefix) and self._claim(f"truncate-{prefix}", 1):
                data = path.read_bytes()
                path.write_bytes(data[: max(1, len(data) // 2)])

    def on_heartbeat(self) -> None:
        """Called before every lease heartbeat: may delay it."""
        if self.spec.heartbeat_delay > 0:
            time.sleep(self.spec.heartbeat_delay)

    # -- construction --------------------------------------------------------
    @classmethod
    def from_env(cls) -> "FaultInjector | None":
        """The process-wide injector, or None when ``REPRO_FAULTS`` is unset."""
        text = os.environ.get(ENV_VAR, "").strip()
        if not text:
            return None
        global _ACTIVE
        if _ACTIVE is None or _ACTIVE[0] != text:
            _ACTIVE = (text, cls(FaultSpec.parse(text)))
        return _ACTIVE[1]


#: process-wide injector cache: (env text, injector).
_ACTIVE: tuple[str, FaultInjector] | None = None
