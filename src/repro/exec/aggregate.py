"""Aggregation of cell results into the paper's sweep-level containers.

:class:`SweepPoint` and :class:`LoadSweepResult` are the historical
containers of ``repro.core.experiment`` (which now re-exports them);
:func:`average_results` folds several same-config seed repetitions into
one point, and :func:`average_injections` produces the seed-averaged
per-router injection counts behind Figures 4/6.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.results import SimulationResult
from repro.errors import AnalysisError
from repro.metrics.fairness import FairnessMetrics, fairness_from_counts

__all__ = [
    "SweepPoint",
    "LoadSweepResult",
    "average_results",
    "average_injections",
]


@dataclass(frozen=True)
class SweepPoint:
    """Seed-averaged metrics at one offered load."""

    offered_load: float
    accepted_load: float
    avg_latency: float
    latency_breakdown: dict[str, float]
    fairness: FairnessMetrics
    seeds: int

    def as_tuple(self) -> tuple[float, float, float]:
        """(offered, accepted, latency) for quick plotting."""
        return (self.offered_load, self.accepted_load, self.avg_latency)


@dataclass(frozen=True)
class LoadSweepResult:
    """A full latency/throughput curve for one mechanism and pattern."""

    routing: str
    pattern: str
    points: tuple[SweepPoint, ...]

    def latency_series(self) -> list[tuple[float, float]]:
        """(offered load, mean latency) pairs — the left panels of Fig. 2/5."""
        return [(pt.offered_load, pt.avg_latency) for pt in self.points]

    def throughput_series(self) -> list[tuple[float, float]]:
        """(offered, accepted) pairs — the right panels of Fig. 2/5."""
        return [(pt.offered_load, pt.accepted_load) for pt in self.points]

    def saturation_throughput(self) -> float:
        """Highest accepted load along the sweep (the curve's plateau)."""
        return max(pt.accepted_load for pt in self.points)


def average_injections(results: Sequence[SimulationResult]) -> list[float]:
    """Element-wise mean of per-router injection counts across seeds."""
    if not results:
        raise AnalysisError("average_injections needs at least one result")
    n0 = len(results[0].injected_per_router)
    if any(len(r.injected_per_router) != n0 for r in results):
        raise AnalysisError(
            "cannot average results from differently sized networks: "
            f"injected_per_router lengths "
            f"{sorted({len(r.injected_per_router) for r in results})}"
        )
    n = len(results)
    return [sum(r.injected_per_router[i] for r in results) / n for i in range(n0)]


def average_results(results: Sequence[SimulationResult]) -> SweepPoint:
    """Average several same-configuration runs into one sweep point.

    Per-router injection counts are averaged element-wise before the
    fairness metrics are recomputed, matching how the paper reports
    fractional "Min inj" values (e.g. 31.67 = a 3-seed average).
    """
    if not results:
        raise AnalysisError("average_results needs at least one result")
    counts = average_injections(results)
    keys = set(results[0].latency_breakdown)
    if any(set(r.latency_breakdown) != keys for r in results):
        raise AnalysisError(
            "cannot average results with mismatched latency-breakdown keys"
        )
    n = len(results)
    breakdown = {
        k: sum(r.latency_breakdown[k] for r in results) / n
        for k in results[0].latency_breakdown
    }
    return SweepPoint(
        offered_load=sum(r.offered_load for r in results) / n,
        accepted_load=sum(r.accepted_load for r in results) / n,
        avg_latency=sum(r.avg_latency for r in results) / n,
        latency_breakdown=breakdown,
        fairness=fairness_from_counts(counts),
        seeds=n,
    )
