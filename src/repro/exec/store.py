"""On-disk result cache keyed by config digest.

One JSON file per simulated cell, named ``<digest>.json`` under the store
root.  Re-running a plan against the same store only computes cells whose
digest is missing; everything else is loaded back.  Writes are atomic
(temp file + rename) so concurrent runners sharing a store directory
never observe a torn file.

The store embeds :data:`repro.exec.serialize.STORE_VERSION`; entries with
a different version are ignored (treated as misses), so bumping the
version after a semantics-changing simulator update invalidates stale
results without manual cleanup.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile

from repro.core.results import SimulationResult
from repro.exec.serialize import (
    STORE_VERSION,
    result_from_dict,
    result_to_dict,
)

__all__ = ["ResultStore"]


class ResultStore:
    """Directory-backed cache of :class:`SimulationResult` objects."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = pathlib.Path(root)

    def _path(self, digest: str) -> pathlib.Path:
        return self.root / f"{digest}.json"

    def __contains__(self, digest: str) -> bool:
        return self._path(digest).exists()

    def load(self, digest: str) -> SimulationResult | None:
        """Return the stored result for *digest*, or None on a miss."""
        path = self._path(digest)
        try:
            data = json.loads(path.read_text())
            if data.get("version") != STORE_VERSION:
                return None
            return result_from_dict(data["result"])
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            # Unreadable, foreign, or schema-malformed entries are misses
            # (ValueError covers JSONDecodeError and ConfigurationError).
            return None

    def save(self, digest: str, result: SimulationResult) -> pathlib.Path:
        """Persist *result* under *digest* (atomic, last-writer-wins)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(digest)
        payload = json.dumps(
            {"version": STORE_VERSION, "result": result_to_dict(result)}
        )
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                f.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))
