"""On-disk result cache keyed by config digest, plus shard merging.

One JSON file per simulated cell, named ``<digest>.json`` under the store
root.  Re-running a plan against the same store only computes cells whose
digest is missing; everything else is loaded back.  Writes are atomic
(temp file + rename) so concurrent runners sharing a store directory
never observe a torn file.

The store embeds :data:`repro.exec.serialize.STORE_VERSION`; entries with
a different version are ignored (treated as misses), so bumping the
version after a semantics-changing simulator update invalidates stale
results without manual cleanup.

Sharded runs additionally write a :class:`ShardManifest` (``shard.json``)
into their store: the plan digest, the shard coordinates, and the exact
cell digests the shard owns.  :meth:`ResultStore.merge` unions shard
stores back into one, using the manifests to verify that every cell of
the plan is covered exactly once — missing shards, missing results,
double-claimed cells and digest conflicts all fail loudly instead of
producing a silently incomplete merged store.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import tempfile
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.core.results import SimulationResult
from repro.errors import AnalysisError
from repro.exec.serialize import (
    STORE_VERSION,
    result_from_dict,
    result_to_dict,
)

__all__ = ["MANIFEST_NAME", "MergeReport", "ResultStore", "ShardManifest"]

#: file name of the per-shard manifest inside a store directory.
MANIFEST_NAME = "shard.json"


def current_git_sha() -> str | None:
    """HEAD commit of the enclosing checkout, or None outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=pathlib.Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


@dataclass(frozen=True)
class ShardManifest:
    """Provenance record of one shard's slice of a plan.

    ``plan_cells`` is the full plan's sorted unique cell digests and
    ``cells`` the subset this shard owns; carrying both lets a merge
    verify completeness without reconstructing the plan.
    """

    plan_digest: str
    shard_index: int
    shard_count: int
    plan_cells: tuple[str, ...]
    cells: tuple[str, ...]
    git_sha: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "plan_digest": self.plan_digest,
            "shard": {"index": self.shard_index, "count": self.shard_count},
            "plan_cells": list(self.plan_cells),
            "cells": list(self.cells),
            "git_sha": self.git_sha,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ShardManifest":
        return cls(
            plan_digest=data["plan_digest"],
            shard_index=data["shard"]["index"],
            shard_count=data["shard"]["count"],
            plan_cells=tuple(data["plan_cells"]),
            cells=tuple(data["cells"]),
            git_sha=data.get("git_sha"),
        )


@dataclass(frozen=True)
class MergeReport:
    """Outcome of :meth:`ResultStore.merge`."""

    manifest: ShardManifest
    sources: int
    copied: int
    reused: int = 0
    shard_git_shas: tuple[str | None, ...] = field(default=())


class ResultStore:
    """Directory-backed cache of :class:`SimulationResult` objects."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = pathlib.Path(root)

    def _path(self, digest: str) -> pathlib.Path:
        return self.root / f"{digest}.json"

    def __contains__(self, digest: str) -> bool:
        return self._path(digest).exists()

    def load(self, digest: str) -> SimulationResult | None:
        """Return the stored result for *digest*, or None on a miss."""
        path = self._path(digest)
        try:
            data = json.loads(path.read_text())
            if data.get("version") != STORE_VERSION:
                return None
            return result_from_dict(data["result"])
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            # Unreadable, foreign, or schema-malformed entries are misses
            # (ValueError covers JSONDecodeError and ConfigurationError).
            return None

    def save(self, digest: str, result: SimulationResult) -> pathlib.Path:
        """Persist *result* under *digest* (atomic, last-writer-wins)."""
        payload = json.dumps(
            {"version": STORE_VERSION, "result": result_to_dict(result)}
        )
        return self._write_atomic(self._path(digest), payload)

    def _write_atomic(self, path: pathlib.Path, payload: str) -> pathlib.Path:
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                f.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return len(self.digests())

    def digests(self) -> list[str]:
        """Digests of every result entry in the store (manifest excluded)."""
        if not self.root.is_dir():
            return []
        return sorted(
            p.stem for p in self.root.glob("*.json") if p.name != MANIFEST_NAME
        )

    def _read_payload(self, digest: str) -> str | None:
        """Raw JSON text of one entry (byte-comparable), or None."""
        try:
            return self._path(digest).read_text()
        except OSError:
            return None

    # -- shard manifests ----------------------------------------------------
    @property
    def manifest_path(self) -> pathlib.Path:
        return self.root / MANIFEST_NAME

    def write_manifest(self, manifest: ShardManifest) -> pathlib.Path:
        """Persist the shard manifest for this store (atomic)."""
        payload = json.dumps(
            {"version": STORE_VERSION, "manifest": manifest.to_dict()},
            indent=2,
            sort_keys=True,
        )
        return self._write_atomic(self.manifest_path, payload)

    def read_manifest(self) -> ShardManifest:
        """Load this store's shard manifest; missing or foreign is an error.

        Unlike result entries (where a bad file is just a cache miss), a
        bad manifest means shard provenance is unknown, so merging must
        not silently proceed.
        """
        try:
            raw = self.manifest_path.read_text()
        except OSError as exc:
            raise AnalysisError(
                f"no shard manifest at {self.manifest_path} — was this "
                "store written by a sharded run?"
            ) from exc
        try:
            data = json.loads(raw)
            version = data.get("version")
            manifest = ShardManifest.from_dict(data["manifest"])
        except (ValueError, KeyError, TypeError) as exc:
            raise AnalysisError(
                f"unreadable shard manifest at {self.manifest_path}: {exc}"
            ) from exc
        if version != STORE_VERSION:
            raise AnalysisError(
                f"shard manifest {self.manifest_path} has store version "
                f"{version!r}, expected {STORE_VERSION}"
            )
        return manifest

    # -- merging ------------------------------------------------------------
    def merge(self, paths: Sequence["ResultStore | str | os.PathLike"]) -> MergeReport:
        """Union the shard stores at *paths* into this store.

        Verifies — via the shard manifests — that all sources belong to
        the same plan, that every shard of the partition is present
        exactly once, that the owned cell sets are disjoint and cover the
        plan, and that every claimed result exists.  Raises
        :class:`repro.errors.AnalysisError` on any gap, duplicate claim,
        or digest conflict (same cell, different result bytes).

        On success the merged store gets its own ``shard.json`` marking
        it a complete 1-shard store of the same plan, so it can be
        status-checked, re-merged, or consumed offline like any other.
        """
        sources = [p if isinstance(p, ResultStore) else ResultStore(p) for p in paths]
        if not sources:
            raise AnalysisError("merge needs at least one shard store")
        manifests = [src.read_manifest() for src in sources]

        first = manifests[0]
        for src, man in zip(sources, manifests):
            if man.plan_digest != first.plan_digest:
                raise AnalysisError(
                    f"shard store {src.root} belongs to plan "
                    f"{man.plan_digest[:12]}…, expected "
                    f"{first.plan_digest[:12]}… — all shards must come "
                    "from the same plan"
                )
            if man.shard_count != first.shard_count:
                raise AnalysisError(
                    f"shard store {src.root} was cut {man.shard_index}/"
                    f"{man.shard_count}, expected a partition into "
                    f"{first.shard_count} shard(s)"
                )
            if man.plan_cells != first.plan_cells:
                raise AnalysisError(
                    f"shard store {src.root} disagrees on the plan's cell "
                    "set despite a matching plan digest (corrupt manifest?)"
                )

        indices = [man.shard_index for man in manifests]
        if len(set(indices)) != len(indices):
            dupes = sorted({i for i in indices if indices.count(i) > 1})
            raise AnalysisError(f"duplicate shard index(es): {dupes}")
        missing_shards = sorted(set(range(first.shard_count)) - set(indices))
        if missing_shards:
            raise AnalysisError(
                f"missing shard(s) {missing_shards} of "
                f"{first.shard_count}: got indices {sorted(indices)}"
            )

        claimed: dict[str, int] = {}
        for man in manifests:
            for digest in man.cells:
                if digest in claimed:
                    raise AnalysisError(
                        f"cell {digest[:12]}… claimed by shards "
                        f"{claimed[digest]} and {man.shard_index}"
                    )
                claimed[digest] = man.shard_index
        uncovered = sorted(set(first.plan_cells) - set(claimed))
        if uncovered:
            raise AnalysisError(
                f"{len(uncovered)} plan cell(s) not covered by any shard "
                f"(first: {uncovered[0][:12]}…)"
            )

        copied = 0
        reused = 0
        for src, man in zip(sources, manifests):
            for digest in man.cells:
                payload = src._read_payload(digest)
                if payload is None:
                    raise AnalysisError(
                        f"shard {man.shard_index} ({src.root}) is "
                        f"incomplete: no result for claimed cell "
                        f"{digest[:12]}…"
                    )
                existing = self._read_payload(digest)
                if existing is not None:
                    if existing != payload:
                        raise AnalysisError(
                            f"digest conflict for cell {digest[:12]}…: "
                            f"{src.root} disagrees with already-merged "
                            "bytes"
                        )
                    reused += 1
                    continue
                self._write_atomic(self._path(digest), payload)
                copied += 1

        merged = ShardManifest(
            plan_digest=first.plan_digest,
            shard_index=0,
            shard_count=1,
            plan_cells=first.plan_cells,
            cells=first.plan_cells,
            git_sha=current_git_sha(),
        )
        self.write_manifest(merged)
        return MergeReport(
            manifest=merged,
            sources=len(sources),
            copied=copied,
            reused=reused,
            shard_git_shas=tuple(man.git_sha for man in manifests),
        )
