"""On-disk result cache keyed by config digest, plus shard merging.

One JSON file per simulated cell, named ``<digest>.json`` under the store
root.  Re-running a plan against the same store only computes cells whose
digest is missing; everything else is loaded back.  Writes are atomic and
durable (temp file + fsync + rename) so concurrent runners sharing a
store directory never observe a torn file and a killed writer leaves no
partial entry visible.

Every entry carries a SHA-256 checksum over its canonical result
payload.  :meth:`ResultStore.load` **never raises** on a bad entry:
truncated, unparseable, or checksum-mismatched files are *quarantined*
(moved to ``quarantine/`` and logged) and reported as cache misses, so
the runner transparently recomputes them — a corrupt store degrades to a
cold cache, never a crashed sweep.

The store embeds :data:`repro.exec.serialize.STORE_VERSION`; entries with
a different version are ignored (treated as misses, left in place — they
are foreign, not corrupt), so bumping the version after a
semantics-changing simulator update invalidates stale results without
manual cleanup.

Alongside the result entries a store may hold a shard manifest
(``shard.json``), a failures journal (``failures.json``, the structured
per-cell failure records of the last run against this store), and the
lease directory (``leases/``) of the fault-tolerant runner.

Sharded runs additionally write a :class:`ShardManifest` (``shard.json``)
into their store: the plan digest, the shard coordinates, and the exact
cell digests the shard owns.  :meth:`ResultStore.merge` unions shard
stores back into one, using the manifests to verify that every cell of
the plan is covered exactly once — missing shards, missing results,
double-claimed cells and digest conflicts all fail loudly instead of
producing a silently incomplete merged store.
"""

from __future__ import annotations

import json
import logging
import os
import pathlib
import subprocess
import tempfile
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.core.results import SimulationResult
from repro.errors import AnalysisError
from repro.exec.faults import FaultInjector
from repro.exec.serialize import (
    STORE_VERSION,
    entry_checksum,
    result_from_dict,
    result_to_dict,
)

__all__ = [
    "FAILURES_NAME",
    "MANIFEST_NAME",
    "MergeReport",
    "QUARANTINE_DIR",
    "ResultStore",
    "ShardManifest",
]

log = logging.getLogger(__name__)

#: file name of the per-shard manifest inside a store directory.
MANIFEST_NAME = "shard.json"

#: file name of the per-run failure journal inside a store directory.
FAILURES_NAME = "failures.json"

#: subdirectory corrupt entries are moved to (never read back as results).
QUARANTINE_DIR = "quarantine"

#: store-root file names that are not result entries.
_NON_RESULT_NAMES = frozenset({MANIFEST_NAME, FAILURES_NAME})


def _payload_ok(payload: str) -> bool:
    """True when raw entry text parses, matches the version, and checksums."""
    try:
        data = json.loads(payload)
        return (
            isinstance(data, dict)
            and data.get("version") == STORE_VERSION
            and data.get("checksum") == entry_checksum(data["result"])
        )
    except (ValueError, KeyError, TypeError):
        return False


def current_git_sha() -> str | None:
    """HEAD commit of the enclosing checkout, or None outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=pathlib.Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


@dataclass(frozen=True)
class ShardManifest:
    """Provenance record of one shard's slice of a plan.

    ``plan_cells`` is the full plan's sorted unique cell digests and
    ``cells`` the subset this shard owns; carrying both lets a merge
    verify completeness without reconstructing the plan.
    """

    plan_digest: str
    shard_index: int
    shard_count: int
    plan_cells: tuple[str, ...]
    cells: tuple[str, ...]
    git_sha: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "plan_digest": self.plan_digest,
            "shard": {"index": self.shard_index, "count": self.shard_count},
            "plan_cells": list(self.plan_cells),
            "cells": list(self.cells),
            "git_sha": self.git_sha,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ShardManifest":
        return cls(
            plan_digest=data["plan_digest"],
            shard_index=data["shard"]["index"],
            shard_count=data["shard"]["count"],
            plan_cells=tuple(data["plan_cells"]),
            cells=tuple(data["cells"]),
            git_sha=data.get("git_sha"),
        )


@dataclass(frozen=True)
class MergeReport:
    """Outcome of :meth:`ResultStore.merge`."""

    manifest: ShardManifest
    sources: int
    copied: int
    reused: int = 0
    shard_git_shas: tuple[str | None, ...] = field(default=())


class ResultStore:
    """Directory-backed cache of :class:`SimulationResult` objects."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = pathlib.Path(root)

    def _path(self, digest: str) -> pathlib.Path:
        return self.root / f"{digest}.json"

    def __contains__(self, digest: str) -> bool:
        """True when a *loadable* entry for *digest* exists.

        Applies the same validation as :meth:`load` (parse, store
        version, checksum) so a torn write or a foreign-version entry is
        a miss here exactly as it would be there — a bare
        ``path.exists()`` used to answer True for entries ``load`` would
        reject, making dedup scans skip cells that could never actually
        be read back.  Unlike :meth:`load` this is non-mutating: corrupt
        entries are left for ``load`` to quarantine.
        """
        payload = self._read_payload(digest)
        return payload is not None and _payload_ok(payload)

    def load(self, digest: str) -> SimulationResult | None:
        """Return the stored result for *digest*, or None on a miss.

        Never raises on a bad entry: a truncated/unparseable file or a
        checksum mismatch is quarantined (moved aside, logged) and
        reported as a miss so the caller recomputes the cell.  Entries
        with a foreign ``STORE_VERSION`` are plain misses (left in
        place: they are stale, not corrupt).
        """
        path = self._path(digest)
        try:
            raw = path.read_text()
        except OSError:
            return None  # plain miss
        try:
            data = json.loads(raw)
        except ValueError:
            self._quarantine(path, digest, "unparseable JSON (torn write?)")
            return None
        if not isinstance(data, dict):
            self._quarantine(path, digest, "entry is not an object")
            return None
        if data.get("version") != STORE_VERSION:
            return None  # foreign entry: a miss, but not corrupt
        try:
            entry = data["result"]
            if data.get("checksum") != entry_checksum(entry):
                self._quarantine(path, digest, "checksum mismatch")
                return None
            return result_from_dict(entry)
        except (ValueError, KeyError, TypeError, AttributeError):
            # ValueError covers ConfigurationError from config rebuild.
            self._quarantine(path, digest, "schema-malformed entry")
            return None

    def save(self, digest: str, result: SimulationResult) -> pathlib.Path:
        """Persist *result* under *digest* (atomic, last-writer-wins).

        Identical results serialize to identical bytes, so concurrent
        workers racing on the same (deterministic) cell are harmless.
        """
        entry = result_to_dict(result)
        payload = json.dumps(
            {
                "version": STORE_VERSION,
                "checksum": entry_checksum(entry),
                "result": entry,
            }
        )
        path = self._write_atomic(self._path(digest), payload)
        injector = FaultInjector.from_env()
        if injector is not None:
            injector.on_store_write(path, digest)
        return path

    def _quarantine(self, path: pathlib.Path, digest: str, reason: str) -> None:
        """Move a corrupt entry to ``quarantine/`` (best-effort) and log it."""
        qdir = self.root / QUARANTINE_DIR
        qdir.mkdir(parents=True, exist_ok=True)
        target = qdir / path.name
        i = 0
        while target.exists():
            target = qdir / f"{path.name}.{i}"
            i += 1
        try:
            os.replace(path, target)
        except OSError:
            pass  # raced with another quarantiner/writer; the miss stands
        log.warning(
            "quarantined corrupt store entry %s… (%s); it will be recomputed",
            digest[:12],
            reason,
        )

    def quarantined(self) -> list[str]:
        """Digests of entries that were quarantined as corrupt."""
        qdir = self.root / QUARANTINE_DIR
        if not qdir.is_dir():
            return []
        return sorted({p.name.partition(".")[0] for p in qdir.iterdir()})

    def _write_atomic(self, path: pathlib.Path, payload: str) -> pathlib.Path:
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as f:
                f.write(payload)
                f.flush()
                os.fsync(f.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return len(self.digests())

    def digests(self) -> list[str]:
        """Digests of every result entry (manifest/journal excluded)."""
        if not self.root.is_dir():
            return []
        return sorted(
            p.stem
            for p in self.root.glob("*.json")
            if p.name not in _NON_RESULT_NAMES
        )

    def _read_payload(self, digest: str) -> str | None:
        """Raw JSON text of one entry (byte-comparable), or None."""
        try:
            return self._path(digest).read_text()
        except OSError:
            return None

    # -- failures journal ---------------------------------------------------
    @property
    def failures_path(self) -> pathlib.Path:
        return self.root / FAILURES_NAME

    def write_failures(
        self, plan_digest: str, records: Sequence[dict[str, Any]]
    ) -> None:
        """Persist the structured failure records of the last run.

        An empty *records* clears the journal (the plan's cells all
        completed).  The journal is advisory — ``plan status`` and
        ``plan resume`` read it to explain what went wrong — so it is
        tolerant on read and last-writer-wins on write.
        """
        if not records:
            self.failures_path.unlink(missing_ok=True)
            return
        payload = json.dumps(
            {
                "version": STORE_VERSION,
                "plan_digest": plan_digest,
                "failures": list(records),
            },
            indent=2,
            sort_keys=True,
        )
        self._write_atomic(self.failures_path, payload)

    def read_failures(self, plan_digest: str | None = None) -> list[dict[str, Any]]:
        """Failure records from the journal ([] when absent/foreign/bad)."""
        try:
            data = json.loads(self.failures_path.read_text())
            if data.get("version") != STORE_VERSION:
                return []
            if plan_digest is not None and data.get("plan_digest") != plan_digest:
                return []
            records = data["failures"]
            return list(records) if isinstance(records, list) else []
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            return []

    # -- shard manifests ----------------------------------------------------
    @property
    def manifest_path(self) -> pathlib.Path:
        return self.root / MANIFEST_NAME

    def write_manifest(self, manifest: ShardManifest) -> pathlib.Path:
        """Persist the shard manifest for this store (atomic)."""
        payload = json.dumps(
            {"version": STORE_VERSION, "manifest": manifest.to_dict()},
            indent=2,
            sort_keys=True,
        )
        return self._write_atomic(self.manifest_path, payload)

    def read_manifest(self) -> ShardManifest:
        """Load this store's shard manifest; missing or foreign is an error.

        Unlike result entries (where a bad file is just a cache miss), a
        bad manifest means shard provenance is unknown, so merging must
        not silently proceed.
        """
        try:
            raw = self.manifest_path.read_text()
        except OSError as exc:
            raise AnalysisError(
                f"no shard manifest at {self.manifest_path} — was this "
                "store written by a sharded run?"
            ) from exc
        try:
            data = json.loads(raw)
            version = data.get("version")
            manifest = ShardManifest.from_dict(data["manifest"])
        except (ValueError, KeyError, TypeError) as exc:
            raise AnalysisError(
                f"unreadable shard manifest at {self.manifest_path}: {exc}"
            ) from exc
        if version != STORE_VERSION:
            raise AnalysisError(
                f"shard manifest {self.manifest_path} has store version "
                f"{version!r}, expected {STORE_VERSION}"
            )
        return manifest

    # -- merging ------------------------------------------------------------
    def merge(self, paths: Sequence["ResultStore | str | os.PathLike"]) -> MergeReport:
        """Union the shard stores at *paths* into this store.

        Verifies — via the shard manifests — that all sources belong to
        the same plan, that every shard of the partition is present
        exactly once, that the owned cell sets are disjoint and cover the
        plan, and that every claimed result exists.  Raises
        :class:`repro.errors.AnalysisError` on any gap, duplicate claim,
        or digest conflict (same cell, different result bytes).

        On success the merged store gets its own ``shard.json`` marking
        it a complete 1-shard store of the same plan, so it can be
        status-checked, re-merged, or consumed offline like any other.
        """
        sources = [p if isinstance(p, ResultStore) else ResultStore(p) for p in paths]
        if not sources:
            raise AnalysisError("merge needs at least one shard store")
        manifests = [src.read_manifest() for src in sources]

        first = manifests[0]
        for src, man in zip(sources, manifests):
            if man.plan_digest != first.plan_digest:
                raise AnalysisError(
                    f"shard store {src.root} belongs to plan "
                    f"{man.plan_digest[:12]}…, expected "
                    f"{first.plan_digest[:12]}… — all shards must come "
                    "from the same plan"
                )
            if man.shard_count != first.shard_count:
                raise AnalysisError(
                    f"shard store {src.root} was cut {man.shard_index}/"
                    f"{man.shard_count}, expected a partition into "
                    f"{first.shard_count} shard(s)"
                )
            if man.plan_cells != first.plan_cells:
                raise AnalysisError(
                    f"shard store {src.root} disagrees on the plan's cell "
                    "set despite a matching plan digest (corrupt manifest?)"
                )

        indices = [man.shard_index for man in manifests]
        if len(set(indices)) != len(indices):
            dupes = sorted({i for i in indices if indices.count(i) > 1})
            raise AnalysisError(f"duplicate shard index(es): {dupes}")
        missing_shards = sorted(set(range(first.shard_count)) - set(indices))
        if missing_shards:
            raise AnalysisError(
                f"missing shard(s) {missing_shards} of "
                f"{first.shard_count}: got indices {sorted(indices)}"
            )

        claimed: dict[str, int] = {}
        for man in manifests:
            for digest in man.cells:
                if digest in claimed:
                    raise AnalysisError(
                        f"cell {digest[:12]}… claimed by shards "
                        f"{claimed[digest]} and {man.shard_index}"
                    )
                claimed[digest] = man.shard_index
        uncovered = sorted(set(first.plan_cells) - set(claimed))
        if uncovered:
            raise AnalysisError(
                f"{len(uncovered)} plan cell(s) not covered by any shard "
                f"(first: {uncovered[0][:12]}…)"
            )

        copied = 0
        reused = 0
        for src, man in zip(sources, manifests):
            for digest in man.cells:
                payload = src._read_payload(digest)
                if payload is None:
                    raise AnalysisError(
                        f"shard {man.shard_index} ({src.root}) is "
                        f"incomplete: no result for claimed cell "
                        f"{digest[:12]}…"
                    )
                if not _payload_ok(payload):
                    raise AnalysisError(
                        f"shard {man.shard_index} ({src.root}) is "
                        f"incomplete: corrupt result for claimed cell "
                        f"{digest[:12]}… — run `plan resume` against the "
                        "shard store to recompute it"
                    )
                existing = self._read_payload(digest)
                if existing is not None:
                    if existing != payload:
                        raise AnalysisError(
                            f"digest conflict for cell {digest[:12]}…: "
                            f"{src.root} disagrees with already-merged "
                            "bytes"
                        )
                    reused += 1
                    continue
                self._write_atomic(self._path(digest), payload)
                copied += 1

        merged = ShardManifest(
            plan_digest=first.plan_digest,
            shard_index=0,
            shard_count=1,
            plan_cells=first.plan_cells,
            cells=first.plan_cells,
            git_sha=current_git_sha(),
        )
        self.write_manifest(merged)
        return MergeReport(
            manifest=merged,
            sources=len(sources),
            copied=copied,
            reused=reused,
            shard_git_shas=tuple(man.git_sha for man in manifests),
        )
