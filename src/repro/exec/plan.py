"""Declarative experiment plans.

An :class:`ExperimentPlan` is an ordered list of :class:`Cell`\\ s, each
one fully resolved simulation (config + derived seed) tagged with the
logical *point* it belongs to — the parent config before per-seed seed
splitting.  Plans are built declaratively (cartesian grids, load sweeps,
single points), combined with ``+``, and handed to
:class:`repro.exec.runner.Runner` for serial or parallel execution.

Seed derivation matches the historical ``run_point`` protocol exactly
(``split_seed(master, 100 + s)``), so results are bit-identical to the
old serial harness regardless of execution order or parallelism.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from functools import cached_property

from repro.config import SimulationConfig
from repro.errors import AnalysisError
from repro.exec.serialize import config_digest
from repro.traffic.patterns import pattern_name
from repro.utils.rng import split_seed

__all__ = ["Cell", "ExperimentPlan"]

#: seed-stream offset used per averaged repetition (historical protocol).
_SEED_STREAM_BASE = 100


def _point_cells(config: SimulationConfig, seeds: int) -> list["Cell"]:
    if seeds < 1:
        raise AnalysisError("seeds must be >= 1")
    return [
        Cell(
            config=config.with_(
                seed=split_seed(config.seed, _SEED_STREAM_BASE + s)
            ),
            parent=config,
            seed_index=s,
        )
        for s in range(seeds)
    ]


@dataclass(frozen=True)
class Cell:
    """One concrete simulation: resolved config, parent point, seed slot."""

    config: SimulationConfig
    parent: SimulationConfig
    seed_index: int = 0

    @cached_property
    def digest(self) -> str:
        """Stable identity of the resolved config (cache/dedup key)."""
        return config_digest(self.config)

    @cached_property
    def parent_digest(self) -> str:
        """Stable identity of the logical point this cell belongs to."""
        return config_digest(self.parent)

    def label(self) -> str:
        """Short human-readable cell description for plan listings."""
        t = self.parent.traffic
        return (
            f"{self.parent.routing:12s} {pattern_name(t):7s} "
            f"load={t.load:<5.3g} seed#{self.seed_index}"
        )


@dataclass(frozen=True)
class ExperimentPlan:
    """An ordered, immutable collection of simulation cells."""

    cells: tuple[Cell, ...] = ()

    # -- constructors -------------------------------------------------------
    @classmethod
    def point(cls, config: SimulationConfig, *, seeds: int = 1) -> "ExperimentPlan":
        """One logical point: *seeds* repetitions of one config."""
        return cls(tuple(_point_cells(config, seeds)))

    @classmethod
    def sweep(
        cls,
        config: SimulationConfig,
        loads: Sequence[float],
        *,
        seeds: int = 1,
    ) -> "ExperimentPlan":
        """A load sweep of one (routing, pattern) combination."""
        if not loads:
            raise AnalysisError("sweep needs at least one load")
        cells: list[Cell] = []
        for load in loads:
            cells.extend(_point_cells(config.with_traffic(load=load), seeds))
        return cls(tuple(cells))

    @classmethod
    def grid(
        cls,
        base: SimulationConfig,
        *,
        routings: Sequence[str] | None = None,
        patterns: Sequence[str] | None = None,
        loads: Sequence[float] | None = None,
        seeds: int = 1,
    ) -> "ExperimentPlan":
        """Cartesian product over routings x patterns x loads x seeds.

        ``None`` for an axis means "keep the base config's value"; an
        explicitly empty axis is an error (a silently empty grid would
        misattribute results).
        """
        routings = [base.routing] if routings is None else list(routings)
        patterns = [base.traffic.pattern] if patterns is None else list(patterns)
        loads = [base.traffic.load] if loads is None else list(loads)
        if not (routings and patterns and loads):
            raise AnalysisError("grid axes must be None or non-empty")
        cells: list[Cell] = []
        for routing in routings:
            for pattern in patterns:
                cfg = base.with_(routing=routing).with_traffic(pattern=pattern)
                for load in loads:
                    cells.extend(
                        _point_cells(cfg.with_traffic(load=load), seeds)
                    )
        return cls(tuple(cells))

    @classmethod
    def merge(cls, plans: Iterable["ExperimentPlan"]) -> "ExperimentPlan":
        """Concatenate several plans into one (order preserved)."""
        cells: list[Cell] = []
        for plan in plans:
            cells.extend(plan.cells)
        return cls(tuple(cells))

    # -- collection protocol ------------------------------------------------
    def __add__(self, other: "ExperimentPlan") -> "ExperimentPlan":
        return ExperimentPlan(self.cells + other.cells)

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[Cell]:
        return iter(self.cells)

    # -- introspection ------------------------------------------------------
    def points(self) -> list[SimulationConfig]:
        """Unique parent configs, in first-appearance order."""
        seen: dict[str, SimulationConfig] = {}
        for cell in self.cells:
            seen.setdefault(cell.parent_digest, cell.parent)
        return list(seen.values())

    def unique_cells(self) -> int:
        """Number of distinct simulations the plan will execute."""
        return len({cell.digest for cell in self.cells})

    def describe(self) -> str:
        """Multi-line plan listing (one line per cell)."""
        lines = [
            f"ExperimentPlan: {len(self.cells)} cells "
            f"({len(self.points())} points, {self.unique_cells()} unique "
            "simulations)"
        ]
        lines.extend(f"  [{i:3d}] {cell.label()}" for i, cell in enumerate(self.cells))
        return "\n".join(lines)
