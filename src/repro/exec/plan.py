"""Declarative experiment plans.

An :class:`ExperimentPlan` is an ordered list of :class:`Cell`\\ s, each
one fully resolved simulation (config + derived seed) tagged with the
logical *point* it belongs to — the parent config before per-seed seed
splitting.  Plans are built declaratively (cartesian grids, load sweeps,
single points), combined with ``+``, and handed to
:class:`repro.exec.runner.Runner` for serial or parallel execution.

Seed derivation matches the historical ``run_point`` protocol exactly
(``split_seed(master, 100 + s)``), so results are bit-identical to the
old serial harness regardless of execution order or parallelism.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from functools import cached_property

from repro.config import SimulationConfig
from repro.errors import AnalysisError, SimulationError
from repro.exec.serialize import config_digest, plan_digest
from repro.traffic.patterns import pattern_name
from repro.utils.rng import split_seed

__all__ = ["Cell", "ExperimentPlan", "Shard"]

#: seed-stream offset used per averaged repetition (historical protocol).
_SEED_STREAM_BASE = 100


def _point_cells(config: SimulationConfig, seeds: int) -> list["Cell"]:
    if seeds < 1:
        raise AnalysisError("seeds must be >= 1")
    return [
        Cell(
            config=config.with_(seed=split_seed(config.seed, _SEED_STREAM_BASE + s)),
            parent=config,
            seed_index=s,
        )
        for s in range(seeds)
    ]


@dataclass(frozen=True)
class Cell:
    """One concrete simulation: resolved config, parent point, seed slot."""

    config: SimulationConfig
    parent: SimulationConfig
    seed_index: int = 0

    @cached_property
    def digest(self) -> str:
        """Stable identity of the resolved config (cache/dedup key)."""
        return config_digest(self.config)

    @cached_property
    def parent_digest(self) -> str:
        """Stable identity of the logical point this cell belongs to."""
        return config_digest(self.parent)

    def label(self) -> str:
        """Short human-readable cell description for plan listings."""
        t = self.parent.traffic
        return (
            f"{self.parent.routing:12s} {pattern_name(t):7s} "
            f"load={t.load:<5.3g} seed#{self.seed_index}"
        )


@dataclass(frozen=True)
class Shard:
    """One slice ``index`` of a plan partitioned into ``count`` slices.

    Validation raises :class:`repro.errors.SimulationError` because a bad
    shard spec means a distributed run would silently execute the wrong
    (or no) cells — that is a broken simulation campaign, not an analysis
    problem.
    """

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise SimulationError(f"shard count must be >= 1, got {self.count}")
        if not 0 <= self.index < self.count:
            raise SimulationError(
                f"shard index {self.index} out of range for "
                f"{self.count} shard(s)"
            )

    @classmethod
    def parse(cls, spec: str) -> "Shard":
        """Parse the CLI form ``"K/N"`` (e.g. ``"0/4"``)."""
        index, sep, count = spec.partition("/")
        try:
            if not sep:
                raise ValueError(spec)
            return cls(int(index), int(count))
        except ValueError:
            raise SimulationError(
                f"shard spec must look like K/N (e.g. 0/4), got {spec!r}"
            ) from None

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"


@dataclass(frozen=True)
class ExperimentPlan:
    """An ordered, immutable collection of simulation cells."""

    cells: tuple[Cell, ...] = ()

    # -- constructors -------------------------------------------------------
    @classmethod
    def point(cls, config: SimulationConfig, *, seeds: int = 1) -> "ExperimentPlan":
        """One logical point: *seeds* repetitions of one config."""
        return cls(tuple(_point_cells(config, seeds)))

    @classmethod
    def sweep(
        cls,
        config: SimulationConfig,
        loads: Sequence[float],
        *,
        seeds: int = 1,
    ) -> "ExperimentPlan":
        """A load sweep of one (routing, pattern) combination."""
        if not loads:
            raise AnalysisError("sweep needs at least one load")
        cells: list[Cell] = []
        for load in loads:
            cells.extend(_point_cells(config.with_traffic(load=load), seeds))
        return cls(tuple(cells))

    @classmethod
    def grid(
        cls,
        base: SimulationConfig,
        *,
        routings: Sequence[str] | None = None,
        patterns: Sequence[str] | None = None,
        loads: Sequence[float] | None = None,
        seeds: int = 1,
    ) -> "ExperimentPlan":
        """Cartesian product over routings x patterns x loads x seeds.

        ``None`` for an axis means "keep the base config's value"; an
        explicitly empty axis is an error (a silently empty grid would
        misattribute results).
        """
        routings = [base.routing] if routings is None else list(routings)
        patterns = [base.traffic.pattern] if patterns is None else list(patterns)
        loads = [base.traffic.load] if loads is None else list(loads)
        if not (routings and patterns and loads):
            raise AnalysisError("grid axes must be None or non-empty")
        cells: list[Cell] = []
        for routing in routings:
            for pattern in patterns:
                cfg = base.with_(routing=routing).with_traffic(pattern=pattern)
                for load in loads:
                    cells.extend(_point_cells(cfg.with_traffic(load=load), seeds))
        return cls(tuple(cells))

    @classmethod
    def merge(cls, plans: Iterable["ExperimentPlan"]) -> "ExperimentPlan":
        """Concatenate several plans into one (order preserved)."""
        cells: list[Cell] = []
        for plan in plans:
            cells.extend(plan.cells)
        return cls(tuple(cells))

    # -- collection protocol ------------------------------------------------
    def __add__(self, other: "ExperimentPlan") -> "ExperimentPlan":
        return ExperimentPlan(self.cells + other.cells)

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[Cell]:
        return iter(self.cells)

    # -- sharding -----------------------------------------------------------
    @cached_property
    def digest(self) -> str:
        """Order-independent identity of the plan's unique cell set.

        Two workers that built the "same" plan through different code
        paths (grid vs merged sweeps, shuffled axes, repeated cells) get
        the same digest iff they will simulate the same set of configs —
        print it before launching shards to check the fleet agrees.
        """
        return plan_digest(cell.digest for cell in self.cells)

    def cell_digests(self) -> tuple[str, ...]:
        """Sorted unique digests of every cell in the plan."""
        return tuple(sorted({cell.digest for cell in self.cells}))

    def shard_digests(self, shard: Shard) -> frozenset[str]:
        """The cell digests owned by *shard*.

        The partition walks the sorted unique digests round-robin, so it
        is deterministic, balanced to within one cell, and depends only
        on the plan's cell *set* — never on grid construction order.
        """
        return frozenset(
            digest
            for i, digest in enumerate(self.cell_digests())
            if i % shard.count == shard.index
        )

    def shard(self, index: int, count: int) -> "ExperimentPlan":
        """The sub-plan owned by shard *index* of *count*.

        ``shard(0, 1)`` is the identity. A plan with fewer unique cells
        than *count* yields empty sub-plans for the surplus shards, which
        run (and merge) cleanly as no-ops.
        """
        owned = self.shard_digests(Shard(index, count))
        return ExperimentPlan(
            tuple(cell for cell in self.cells if cell.digest in owned)
        )

    # -- batching -----------------------------------------------------------
    def batches(self, width: int) -> list[list[Cell]]:
        """Group the plan's unique cells into batch-compatible chunks.

        Cells sharing a :func:`repro.core.batch.batch_compat_key` (same
        everything except ``traffic.load`` and ``seed``) are grouped in
        first-appearance order and chunked to at most *width* cells, the
        unit a :class:`repro.core.batch.BatchSimulation` executes in one
        fused drain.  Singleton chunks are returned too — callers that
        only benefit from true batches (the runner) skip them and let
        the per-cell path handle the stragglers.
        """
        if width < 1:
            raise AnalysisError(f"batch width must be >= 1, got {width}")
        from repro.core.batch import batch_compat_key

        groups: dict[str, list[Cell]] = {}
        seen: set[str] = set()
        for cell in self.cells:
            if cell.digest in seen:
                continue
            seen.add(cell.digest)
            groups.setdefault(batch_compat_key(cell.config), []).append(cell)
        return [
            members[i : i + width]
            for members in groups.values()
            for i in range(0, len(members), width)
        ]

    # -- introspection ------------------------------------------------------
    def points(self) -> list[SimulationConfig]:
        """Unique parent configs, in first-appearance order."""
        seen: dict[str, SimulationConfig] = {}
        for cell in self.cells:
            seen.setdefault(cell.parent_digest, cell.parent)
        return list(seen.values())

    def unique_cells(self) -> int:
        """Number of distinct simulations the plan will execute."""
        return len({cell.digest for cell in self.cells})

    def describe(self) -> str:
        """Multi-line plan listing (one line per cell)."""
        lines = [
            f"ExperimentPlan: {len(self.cells)} cells "
            f"({len(self.points())} points, {self.unique_cells()} unique "
            "simulations)",
            f"  plan digest: {self.digest}",
        ]
        lines.extend(f"  [{i:3d}] {cell.label()}" for i, cell in enumerate(self.cells))
        return "\n".join(lines)
