"""Experiment execution subsystem: declarative plans, parallel running,
result caching, and aggregation.

This is the orchestration seam between the pure simulator
(:func:`repro.core.simulation.run_simulation`) and every consumer that
needs many simulations — the CLI, the figure/table generators, and the
benchmark harness.  The flow is::

    plan   = ExperimentPlan.grid(base, routings=..., patterns=..., loads=...)
    result = Runner(jobs=8, store=".repro-cache").run(plan)
    sweep  = result.sweep(base.with_(routing="min"), loads)

Cells are deduplicated by a stable config digest, cached on disk as JSON
(:class:`ResultStore`), and executed either inline or over a process
pool; per-cell seeds are pre-derived so parallel and serial execution
are bit-identical.
"""

from repro.exec.aggregate import (
    LoadSweepResult,
    SweepPoint,
    average_injections,
    average_results,
)
from repro.exec.faults import FaultInjector, FaultSpec, pick_cells
from repro.exec.leases import LeaseCoordinator, LeaseRecord
from repro.exec.plan import Cell, ExperimentPlan, Shard
from repro.exec.runner import (
    CellFailure,
    PlanResult,
    RetryPolicy,
    Runner,
    default_jobs,
    describe_error,
    is_retryable,
    run_cell,
)
from repro.exec.serialize import config_digest, plan_digest
from repro.exec.store import MergeReport, ResultStore, ShardManifest

__all__ = [
    "Cell",
    "CellFailure",
    "ExperimentPlan",
    "FaultInjector",
    "FaultSpec",
    "LeaseCoordinator",
    "LeaseRecord",
    "LoadSweepResult",
    "MergeReport",
    "PlanResult",
    "ResultStore",
    "RetryPolicy",
    "Runner",
    "Shard",
    "ShardManifest",
    "SweepPoint",
    "average_injections",
    "average_results",
    "config_digest",
    "default_jobs",
    "describe_error",
    "is_retryable",
    "pick_cells",
    "plan_digest",
    "run_cell",
]
