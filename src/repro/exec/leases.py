"""File-based per-cell leases for cooperating sweep workers.

A :class:`LeaseCoordinator` hands out short-lived, heartbeat-renewed
leases over the cells of one plan (keyed by the plan digest), using only
a shared directory — no daemon, no sockets — so any filesystem the
workers can all see (one machine, NFS, a CI artifact volume) is a
coordination substrate.

Protocol
--------
* **Acquire** — atomic ``O_CREAT | O_EXCL`` creation of
  ``leases/<plan>/<cell>.json``.  Exactly one contender wins; the file
  carries the owner id, a per-acquisition token, and a deadline.
* **Heartbeat** — the owner periodically rewrites the file with a fresh
  deadline.  A heartbeat first re-reads the file: if the token inside is
  no longer ours the lease was reclaimed or stolen and
  :class:`repro.errors.LeaseError` is raised — the worker must stop
  claiming the cell (its in-flight result may still be saved: cells are
  pure functions of their configs, so duplicate saves are bit-identical
  and harmless).
* **Reclaim** — a lease whose deadline passed belongs to a dead worker.
  Takeover renames the file to a per-contender tombstone (only one
  rename can succeed) and then re-creates the lease exclusively, so
  concurrent reclaimers cannot both win.
* **Steal** — an idle worker may take over a live but slow lease via
  the same tombstone move (:meth:`LeaseCoordinator.steal`).  The
  previous owner learns of the loss on its next heartbeat.
* **Complete/Release** — the owner deletes the file; the durable record
  of completion is the result entry in the :class:`~repro.exec.store.
  ResultStore`, never the lease itself.

The invariant the property tests pin: at any instant there is at most
one lease *file* per cell, carrying exactly one token, and every worker
whose token is not the one in the file finds out no later than its next
heartbeat.  Combined with idempotent (bit-identical) result writes this
gives exactly-once *completion* per cell even though a stolen cell may
transiently be computed twice.

Clocks are injectable (``clock=``) so expiry/steal interleavings are
testable without sleeping; the default is wall-clock ``time.time`` since
deadlines must be comparable across machines.
"""

from __future__ import annotations

import json
import os
import pathlib
import socket
import time
import uuid
from collections.abc import Callable
from dataclasses import dataclass, replace
from typing import Any

from repro.errors import AnalysisError, LeaseError
from repro.exec.faults import FaultInjector

__all__ = ["LEASE_DIR_NAME", "LeaseCoordinator", "LeaseRecord"]

#: subdirectory of a store root that holds per-plan lease directories.
LEASE_DIR_NAME = "leases"


def default_worker_id() -> str:
    """Host-qualified worker identity (stable for one process)."""
    return f"{socket.gethostname()}:{os.getpid()}"


@dataclass(frozen=True)
class LeaseRecord:
    """One worker's claim on one cell, as stored in the lease file."""

    cell: str
    owner: str
    token: str
    acquired_at: float
    deadline: float
    generation: int = 0

    def expired(self, now: float) -> bool:
        return now >= self.deadline

    def to_dict(self) -> dict[str, Any]:
        return {
            "cell": self.cell,
            "owner": self.owner,
            "token": self.token,
            "acquired_at": self.acquired_at,
            "deadline": self.deadline,
            "generation": self.generation,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "LeaseRecord":
        return cls(
            cell=data["cell"],
            owner=data["owner"],
            token=data["token"],
            acquired_at=float(data["acquired_at"]),
            deadline=float(data["deadline"]),
            generation=int(data.get("generation", 0)),
        )


class LeaseCoordinator:
    """Acquire/heartbeat/reclaim cell leases under one store directory."""

    def __init__(
        self,
        root: str | os.PathLike,
        plan_digest: str,
        *,
        worker_id: str | None = None,
        ttl: float = 60.0,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if ttl <= 0:
            raise AnalysisError(f"lease ttl must be > 0, got {ttl}")
        self.dir = pathlib.Path(root) / LEASE_DIR_NAME / plan_digest[:16]
        self.worker_id = worker_id or default_worker_id()
        self.ttl = float(ttl)
        self.clock = clock

    def _path(self, cell: str) -> pathlib.Path:
        return self.dir / f"{cell}.json"

    def _fresh(self, cell: str, generation: int) -> LeaseRecord:
        now = self.clock()
        return LeaseRecord(
            cell=cell,
            owner=self.worker_id,
            token=uuid.uuid4().hex,
            acquired_at=now,
            deadline=now + self.ttl,
            generation=generation,
        )

    @staticmethod
    def _write(fd: int, record: LeaseRecord) -> None:
        with os.fdopen(fd, "w") as f:
            f.write(json.dumps(record.to_dict()))

    # -- core protocol -------------------------------------------------------
    def acquire(self, cell: str) -> LeaseRecord | None:
        """Lease *cell* if it is free or expired; None when held elsewhere."""
        self.dir.mkdir(parents=True, exist_ok=True)
        record = self._fresh(cell, 0)
        try:
            fd = os.open(self._path(cell), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            current = self.read(cell)
            if current is None:
                # Released/unreadable between our create and read: treat
                # as held and let the caller retry on its next pass.
                return None
            if current.expired(self.clock()):
                return self._takeover(cell, current)
            return None
        self._write(fd, record)
        return record

    def _takeover(self, cell: str, current: LeaseRecord) -> LeaseRecord | None:
        """Replace *current* with our own lease; None if we lost the race."""
        tombstone = self.dir / f"{cell}.{uuid.uuid4().hex}.tomb"
        try:
            os.rename(self._path(cell), tombstone)
        except OSError:
            return None  # another contender renamed it first
        try:
            record = self._fresh(cell, current.generation + 1)
            try:
                fd = os.open(self._path(cell), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                # A fresh acquirer slipped in while the path was vacant.
                return None
            self._write(fd, record)
            return record
        finally:
            tombstone.unlink(missing_ok=True)

    def heartbeat(self, record: LeaseRecord) -> LeaseRecord:
        """Extend *record*'s deadline; raises LeaseError if no longer ours."""
        injector = FaultInjector.from_env()
        if injector is not None:
            injector.on_heartbeat()
        current = self.read(record.cell)
        if current is None or current.token != record.token:
            holder = current.owner if current is not None else "completion"
            raise LeaseError(f"lease on cell {record.cell[:12]}… lost to {holder}")
        renewed = replace(record, deadline=self.clock() + self.ttl)
        tmp = self.dir / f"{record.cell}.{record.token}.hb"
        tmp.write_text(json.dumps(renewed.to_dict()))
        os.replace(tmp, self._path(record.cell))
        return renewed

    def release(self, record: LeaseRecord) -> None:
        """Drop *record* if we still own it (no-op when already lost)."""
        current = self.read(record.cell)
        if current is not None and current.token == record.token:
            try:
                self._path(record.cell).unlink()
            except OSError:
                pass

    def complete(self, record: LeaseRecord) -> None:
        """Mark *record*'s cell done (the store entry is the evidence)."""
        self.release(record)

    def steal(self, cell: str) -> LeaseRecord | None:
        """Take over *cell* even from a live holder (idle work-stealing).

        The displaced owner discovers the loss on its next heartbeat.
        Returns None when the cell is unleased-and-unacquirable this
        instant or the takeover race was lost; callers just retry later.
        """
        current = self.read(cell)
        if current is None:
            return self.acquire(cell)
        if current.owner == self.worker_id:
            return None  # never steal from ourselves
        return self._takeover(cell, current)

    # -- introspection -------------------------------------------------------
    def read(self, cell: str) -> LeaseRecord | None:
        """Current lease record of *cell*, or None (free/unreadable)."""
        try:
            data = json.loads(self._path(cell).read_text())
            return LeaseRecord.from_dict(data)
        except (OSError, ValueError, KeyError, TypeError):
            return None

    def active(self) -> dict[str, LeaseRecord]:
        """All readable lease records, keyed by cell digest."""
        if not self.dir.is_dir():
            return {}
        out: dict[str, LeaseRecord] = {}
        for path in sorted(self.dir.glob("*.json")):
            record = self.read(path.stem)
            if record is not None:
                out[record.cell] = record
        return out
