"""Plan execution: serial, process-parallel, or sharded, with caching.

The :class:`Runner` takes an :class:`repro.exec.plan.ExperimentPlan`,
deduplicates its cells by config digest, loads whatever an attached
:class:`repro.exec.store.ResultStore` already holds, and computes the
rest — inline when ``jobs <= 1``, otherwise fanned out over a
``concurrent.futures.ProcessPoolExecutor``.

Every cell is a pure deterministic function of its (fully seeded)
config, so parallel and serial execution return bit-identical results;
the executor only changes wall-clock time.

Passing ``shard=Shard(k, n)`` to :meth:`Runner.run` executes only the
cells the shard owns (a deterministic digest partition of the full plan)
and records a :class:`repro.exec.store.ShardManifest` in the attached
store, so N machines given the same plan and distinct ``k`` cover it
exactly once and their stores merge back into the unsharded result.
``offline=True`` inverts the contract: nothing may be computed — every
needed cell must already be in the store (used to render figures from a
merged store without re-simulation).
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.config import SimulationConfig
from repro.core.results import SimulationResult
from repro.core.simulation import run_simulation
from repro.errors import AnalysisError
from repro.exec.aggregate import LoadSweepResult, SweepPoint, average_results
from repro.exec.plan import ExperimentPlan, Shard
from repro.exec.serialize import config_digest
from repro.exec.store import ResultStore, ShardManifest, current_git_sha

__all__ = ["Runner", "PlanResult", "default_jobs"]


def default_jobs() -> int:
    """Default worker count: ``REPRO_JOBS`` env override, else cpu count."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        return max(1, int(env))
    return os.cpu_count() or 1


def _run_cell(config: SimulationConfig) -> SimulationResult:
    """Top-level worker entry point (must be picklable for the pool)."""
    return run_simulation(config)


@dataclass
class PlanResult:
    """Executed plan: digest-indexed results plus cache statistics."""

    plan: ExperimentPlan
    results: dict[str, SimulationResult]
    computed: int = 0
    cached: int = 0
    shard: Shard | None = None
    _by_parent: dict[str, list[SimulationResult]] | None = field(
        default=None, repr=False, compare=False
    )

    # -- raw access ---------------------------------------------------------
    def cell_results(self) -> list[SimulationResult]:
        """One result per plan cell, in plan order (duplicates repeated)."""
        return [self.results[cell.digest] for cell in self.plan]

    def results_for(self, config: SimulationConfig) -> list[SimulationResult]:
        """Seed-ordered results of the logical point *config*.

        *config* is a **parent** config as passed to the plan constructors
        (master seed, pre-splitting).
        """
        if self._by_parent is None:
            index: dict[str, list[SimulationResult]] = {}
            seen: set[str] = set()
            for cell in self.plan:
                # A cell listed twice (e.g. merged plans) is one simulation;
                # counting it once keeps SweepPoint.seeds honest.
                if cell.digest in seen:
                    continue
                seen.add(cell.digest)
                index.setdefault(cell.parent_digest, []).append(
                    self.results[cell.digest]
                )
            self._by_parent = index
        out = self._by_parent.get(config_digest(config))
        if not out:
            raise AnalysisError(
                "no results for the requested config; was it in the plan?"
            )
        return out

    # -- oracle verdicts ----------------------------------------------------
    def oracle_verdicts(self) -> dict[str, bool]:
        """Per-cell oracle verdict (digest -> passed) of audited cells.

        Cells run without ``config.oracle`` carry no verdict and are
        absent; an empty dict therefore means "nothing was audited",
        not "everything passed".
        """
        return {
            digest: bool(result.oracle["passed"])
            for digest, result in self.results.items()
            if result.oracle is not None
        }

    # -- aggregation --------------------------------------------------------
    def point(self, config: SimulationConfig) -> SweepPoint:
        """Seed-averaged :class:`SweepPoint` of the logical point *config*."""
        return average_results(self.results_for(config))

    def sweep(
        self, config: SimulationConfig, loads: Sequence[float]
    ) -> LoadSweepResult:
        """Reassemble a :class:`LoadSweepResult` over *loads* of *config*."""
        if not loads:
            raise AnalysisError("sweep needs at least one load")
        points = []
        pattern = None
        for load in loads:
            cfg = config.with_traffic(load=load)
            if pattern is None:
                pattern = self.results_for(cfg)[0].pattern
            points.append(self.point(cfg))
        return LoadSweepResult(
            routing=config.routing, pattern=pattern, points=tuple(points)
        )


@dataclass
class Runner:
    """Executes plans; ``jobs=None`` means :func:`default_jobs`.

    ``offline=True`` forbids computation: every cell a run needs must
    already be in the attached store (missing cells raise).
    """

    jobs: int | None = None
    store: ResultStore | str | os.PathLike | None = None
    offline: bool = False

    def __post_init__(self) -> None:
        if self.jobs is None:
            self.jobs = default_jobs()
        if self.jobs < 1:
            raise AnalysisError(f"jobs must be >= 1, got {self.jobs}")
        if self.store is not None and not isinstance(self.store, ResultStore):
            self.store = ResultStore(self.store)
        if self.offline and self.store is None:
            raise AnalysisError("offline execution needs a store to read from")

    def run(self, plan: ExperimentPlan, shard: Shard | None = None) -> PlanResult:
        """Execute *plan*, reusing cached results when a store is attached.

        With *shard*, only the owned sub-plan executes and a shard
        manifest is written to the store (required); the returned
        :class:`PlanResult` covers just the owned cells.  An empty owned
        sub-plan (more shards than cells) is valid and writes a manifest
        claiming no cells.
        """
        if not len(plan):
            raise AnalysisError("cannot run an empty plan")
        sub = plan
        if shard is not None:
            if self.store is None:
                raise AnalysisError(
                    "sharded runs need a store (the shard manifest and "
                    "mergeable results live there)"
                )
            sub = plan.shard(shard.index, shard.count)

        unique: dict[str, SimulationConfig] = {}
        for cell in sub:
            unique.setdefault(cell.digest, cell.config)

        results: dict[str, SimulationResult] = {}
        cached = 0
        if self.store is not None:
            for digest in unique:
                hit = self.store.load(digest)
                if hit is not None:
                    results[digest] = hit
                    cached += 1

        missing = [d for d in unique if d not in results]
        if self.offline and missing:
            raise AnalysisError(
                f"offline run: store is missing {len(missing)} of "
                f"{len(unique)} required cell(s)"
            )
        configs = [unique[d] for d in missing]
        if self.jobs <= 1 or len(configs) <= 1:
            computed = [_run_cell(cfg) for cfg in configs]
        else:
            workers = min(self.jobs, len(configs))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                computed = list(pool.map(_run_cell, configs))
        for digest, result in zip(missing, computed):
            results[digest] = result
            if self.store is not None:
                self.store.save(digest, result)

        if shard is not None:
            self.store.write_manifest(
                ShardManifest(
                    plan_digest=plan.digest,
                    shard_index=shard.index,
                    shard_count=shard.count,
                    plan_cells=plan.cell_digests(),
                    cells=tuple(sorted(unique)),
                    git_sha=current_git_sha(),
                )
            )

        return PlanResult(
            plan=sub,
            results=results,
            computed=len(missing),
            cached=cached,
            shard=shard,
        )
