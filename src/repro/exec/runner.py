"""Fault-tolerant plan execution: serial, process-parallel, or sharded.

The :class:`Runner` takes an :class:`repro.exec.plan.ExperimentPlan`,
deduplicates its cells by config digest, loads whatever an attached
:class:`repro.exec.store.ResultStore` already holds, and computes the
rest — inline when ``jobs <= 1``, otherwise fanned out over a
``concurrent.futures.ProcessPoolExecutor``.

Every cell is a pure deterministic function of its (fully seeded)
config, so parallel and serial execution return bit-identical results;
the executor only changes wall-clock time.  That purity is also what
makes the fault tolerance cheap: retrying, recomputing, or racing a
cell can never produce conflicting bytes.

Fault tolerance (``submit`` + wait loop, not ``pool.map``):

* each cell is retried under a :class:`RetryPolicy` — seeded
  exponential backoff with jitter, an optional per-cell wall-clock
  timeout (the pool is replaced when a cell overruns), and a bounded
  attempt count;
* a dead worker process (``BrokenProcessPool``) costs one attempt for
  the cells that were in flight; the pool is rebuilt and the sweep
  continues;
* every completed cell is persisted to the store *as it lands*, so one
  poison cell can no longer discard its siblings' results;
* cells that exhaust their attempts are quarantined into structured
  :class:`CellFailure` records on the returned :class:`PlanResult`
  (and the store's failures journal) instead of raising — callers that
  need completeness call :meth:`PlanResult.raise_for_failures`.

With ``leases=True`` the runner coordinates through an on-disk
:class:`repro.exec.leases.LeaseCoordinator` keyed by the plan digest:
several runners pointed at the same store partition the plan dynamically
(first-acquirer wins), adopt each other's stored results, reclaim leases
of dead workers after their deadline, and — when otherwise idle — steal
from the slowest live holder.  This is the elastic tier behind
``repro plan resume``.

Passing ``shard=Shard(k, n)`` to :meth:`Runner.run` executes only the
cells the shard owns (a deterministic digest partition of the full plan)
and records a :class:`repro.exec.store.ShardManifest` in the attached
store, so N machines given the same plan and distinct ``k`` cover it
exactly once and their stores merge back into the unsharded result.
``offline=True`` inverts the contract: nothing may be computed — every
needed cell must already be in the store (used to render figures from a
merged store without re-simulation).
"""

from __future__ import annotations

import os
import random
import time
from collections import deque
from collections.abc import Sequence
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    as_completed,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any

from repro.config import SimulationConfig
from repro.core.batch import batch_compat_key, run_simulation_batch
from repro.core.results import SimulationResult
from repro.core.simulation import run_simulation
from repro.errors import (
    AnalysisError,
    ExecutionError,
    FaultInjection,
    LeaseError,
    ReproError,
)
from repro.exec.aggregate import LoadSweepResult, SweepPoint, average_results
from repro.exec.faults import FaultInjector
from repro.exec.leases import LeaseCoordinator, LeaseRecord
from repro.exec.plan import ExperimentPlan, Shard
from repro.exec.serialize import config_digest
from repro.exec.store import ResultStore, ShardManifest, current_git_sha
from repro.utils.cpu import usable_cpu_count

__all__ = [
    "CellFailure",
    "PlanResult",
    "RetryPolicy",
    "Runner",
    "default_jobs",
    "describe_error",
    "is_retryable",
    "run_cell",
    "run_cell_batch",
]

#: wait-loop slice: future polling, foreign-lease store polling, idle sleep.
_POLL = 0.1


def default_jobs() -> int:
    """Default worker count: ``REPRO_JOBS`` env override, else the
    affinity-aware CPU count (cgroup limits and pinned masks respected)."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        return max(1, int(env))
    return usable_cpu_count()


def run_cell(digest: str, config: SimulationConfig) -> SimulationResult:
    """Top-level worker entry point (must be picklable for the pool).

    Threads the cell digest through so the ``REPRO_FAULTS`` harness can
    target individual cells deterministically.  Public so other
    executors — the :mod:`repro.service` daemon's scheduler — can fan
    the exact same entry point out over their own pools.
    """
    injector = FaultInjector.from_env()
    if injector is not None:
        injector.on_cell_start(digest)
    result = run_simulation(config)
    if injector is not None:
        injector.on_cell_end(digest)
    return result


#: internal alias — the execution loops (and the chaos tests' monkeypatch
#: seam) route through this name so a patched entry point affects every
#: executor uniformly.
_run_cell = run_cell


def run_cell_batch(
    items: Sequence[tuple[str, SimulationConfig]]
) -> list[SimulationResult]:
    """Pool entry point for one batched attempt: K cells, one fused drain.

    *items* is a ``(digest, config)`` sequence of batch-compatible cells
    (see :func:`repro.core.batch.batch_compat_key`); results come back in
    the same order and are bit-identical to :func:`run_cell` on each
    member.  Fault-injection hooks fire per member so the ``REPRO_FAULTS``
    harness can poison an individual cell of a batch — the injected
    exception fails the whole attempt, and the runner re-runs the members
    through the per-cell path where the siblings succeed and only the
    poisoned cell keeps failing.
    """
    injector = FaultInjector.from_env()
    if injector is not None:
        for digest, _ in items:
            injector.on_cell_start(digest)
    results = run_simulation_batch([config for _, config in items])
    if injector is not None:
        for digest, _ in items:
            injector.on_cell_end(digest)
    return results


#: monkeypatch seam for the batched entry point (mirrors ``_run_cell``).
_run_cell_batch = run_cell_batch


@dataclass(frozen=True)
class RetryPolicy:
    """Per-cell retry/timeout/backoff contract of a :class:`Runner`.

    Backoff before retry ``k`` (1-based) is
    ``min(max_delay, base_delay * backoff**(k-1))`` scaled by up to
    ``1 + jitter`` — the jitter RNG is seeded from the plan and cell
    digests, so two replays of the same sweep back off identically.

    ``cell_timeout`` is wall-clock seconds per attempt, enforced only in
    pooled runs (``jobs >= 2``): an overrunning cell's worker pool is
    terminated and rebuilt, the attempt counts as a ``timeout`` failure.

    Deterministic simulator errors (any :class:`repro.errors.ReproError`
    except injected faults) are not retried — a cell that fails
    validation or an oracle check will fail identically every attempt,
    so it is quarantined immediately.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    backoff: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5
    cell_timeout: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise AnalysisError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise AnalysisError("backoff delays/jitter must be >= 0")
        if self.backoff < 1:
            raise AnalysisError(f"backoff factor must be >= 1, got {self.backoff}")
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise AnalysisError(f"cell_timeout must be > 0, got {self.cell_timeout}")

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Seconds to back off before retry *attempt* (1-based)."""
        d = min(self.max_delay, self.base_delay * self.backoff ** max(0, attempt - 1))
        if self.jitter > 0:
            d *= 1.0 + self.jitter * rng.random()
        return d


def is_retryable(exc: BaseException) -> bool:
    """Whether a cell failure may heal on retry.

    Infrastructure failures (worker death, timeouts, pickling hiccups —
    anything that is not a simulator error) and injected chaos faults
    are retryable; deterministic :class:`ReproError`\\ s are not.
    """
    if isinstance(exc, FaultInjection):
        return True
    return not isinstance(exc, ReproError)


@dataclass(frozen=True)
class CellFailure:
    """Structured record of one cell that could not be computed."""

    digest: str
    attempts: int
    kind: str  # "error" | "timeout" | "worker-lost"
    error: str
    quarantined: bool = True

    def to_dict(self) -> dict[str, Any]:
        return {
            "digest": self.digest,
            "attempts": self.attempts,
            "kind": self.kind,
            "error": self.error,
            "quarantined": self.quarantined,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CellFailure":
        return cls(
            digest=data["digest"],
            attempts=int(data["attempts"]),
            kind=data["kind"],
            error=data["error"],
            quarantined=bool(data.get("quarantined", True)),
        )


@dataclass
class PlanResult:
    """Executed plan: digest-indexed results plus cache/failure statistics.

    ``results`` holds every cell that completed; ``failures`` the cells
    that exhausted their retries (structured, per cell).  ``retried``
    maps recovered cells to the attempts they needed (> 1), ``adopted``
    counts cells completed by a concurrent lease-holding worker whose
    results this runner picked up from the shared store.
    """

    plan: ExperimentPlan
    results: dict[str, SimulationResult]
    computed: int = 0
    cached: int = 0
    shard: Shard | None = None
    failures: dict[str, CellFailure] = field(default_factory=dict)
    retried: dict[str, int] = field(default_factory=dict)
    adopted: int = 0
    _by_parent: dict[str, list[SimulationResult]] | None = field(
        default=None, repr=False, compare=False
    )

    @property
    def ok(self) -> bool:
        """True when every cell of the (sub-)plan completed."""
        return not self.failures

    def raise_for_failures(self) -> None:
        """Raise :class:`ExecutionError` when unrecovered cells remain."""
        if not self.failures:
            return
        first = next(iter(sorted(self.failures)))
        f = self.failures[first]
        raise ExecutionError(
            f"{len(self.failures)} cell(s) unrecovered after retries "
            f"(first: {f.digest[:12]}… after {f.attempts} attempt(s), "
            f"{f.kind}: {f.error})"
        )

    # -- raw access ---------------------------------------------------------
    def cell_results(self) -> list[SimulationResult]:
        """One result per plan cell, in plan order (duplicates repeated).

        Requires a complete result set — raises on quarantined cells.
        """
        self.raise_for_failures()
        return [self.results[cell.digest] for cell in self.plan]

    def results_for(self, config: SimulationConfig) -> list[SimulationResult]:
        """Seed-ordered results of the logical point *config*.

        *config* is a **parent** config as passed to the plan constructors
        (master seed, pre-splitting).
        """
        if self._by_parent is None:
            index: dict[str, list[SimulationResult]] = {}
            seen: set[str] = set()
            for cell in self.plan:
                # A cell listed twice (e.g. merged plans) is one simulation;
                # counting it once keeps SweepPoint.seeds honest.  Failed
                # cells have no result to index.
                if cell.digest in seen or cell.digest not in self.results:
                    continue
                seen.add(cell.digest)
                index.setdefault(cell.parent_digest, []).append(
                    self.results[cell.digest]
                )
            self._by_parent = index
        out = self._by_parent.get(config_digest(config))
        if not out:
            raise AnalysisError(
                "no results for the requested config; was it in the plan "
                "(and did its cells survive execution)?"
            )
        return out

    # -- oracle verdicts ----------------------------------------------------
    def oracle_verdicts(self) -> dict[str, bool]:
        """Per-cell oracle verdict (digest -> passed) of audited cells.

        Cells run without ``config.oracle`` carry no verdict and are
        absent; an empty dict therefore means "nothing was audited",
        not "everything passed".
        """
        return {
            digest: bool(result.oracle["passed"])
            for digest, result in self.results.items()
            if result.oracle is not None
        }

    # -- aggregation --------------------------------------------------------
    def point(self, config: SimulationConfig) -> SweepPoint:
        """Seed-averaged :class:`SweepPoint` of the logical point *config*."""
        return average_results(self.results_for(config))

    def sweep(
        self, config: SimulationConfig, loads: Sequence[float]
    ) -> LoadSweepResult:
        """Reassemble a :class:`LoadSweepResult` over *loads* of *config*."""
        if not loads:
            raise AnalysisError("sweep needs at least one load")
        points = []
        pattern = None
        for load in loads:
            cfg = config.with_traffic(load=load)
            if pattern is None:
                pattern = self.results_for(cfg)[0].pattern
            points.append(self.point(cfg))
        return LoadSweepResult(
            routing=config.routing, pattern=pattern, points=tuple(points)
        )


@dataclass
class _CellState:
    """Bookkeeping of one in-progress cell inside an execution."""

    digest: str
    config: SimulationConfig
    rng: random.Random
    attempts: int = 0
    eligible_at: float = 0.0  # monotonic time the next attempt may start
    deadline: float | None = None  # monotonic timeout of the running attempt
    lease: LeaseRecord | None = None


@dataclass
class Runner:
    """Executes plans; ``jobs=None`` means :func:`default_jobs`.

    ``retry=None`` selects the default :class:`RetryPolicy`.
    ``leases=True`` (requires a store) coordinates cells through on-disk
    leases so concurrent runners sharing the store each compute a
    disjoint, dynamically balanced subset — see the module docstring.
    ``offline=True`` forbids computation: every cell a run needs must
    already be in the attached store (missing cells raise).
    ``batch=K`` (K >= 2) enables the batched pre-pass: compatible missing
    cells (same everything except load/seed — see
    :func:`repro.core.batch.batch_compat_key`) are packed K at a time
    into :class:`repro.core.batch.BatchSimulation` attempts that step all
    members through one fused drain loop; stragglers and any member of a
    failed batch fall through to the unchanged per-cell retry machinery.
    Results are bit-identical either way.
    """

    jobs: int | None = None
    store: ResultStore | str | os.PathLike | None = None
    offline: bool = False
    retry: RetryPolicy | None = None
    leases: bool = False
    lease_ttl: float = 60.0
    worker_id: str | None = None
    batch: int | None = None

    def __post_init__(self) -> None:
        if self.jobs is None:
            self.jobs = default_jobs()
        if self.jobs < 1:
            raise AnalysisError(f"jobs must be >= 1, got {self.jobs}")
        if self.batch is not None and self.batch < 2:
            raise AnalysisError(
                f"batch width must be >= 2 (or None to disable batching), "
                f"got {self.batch}"
            )
        if self.store is not None and not isinstance(self.store, ResultStore):
            self.store = ResultStore(self.store)
        if self.offline and self.store is None:
            raise AnalysisError("offline execution needs a store to read from")
        if self.retry is None:
            self.retry = RetryPolicy()
        if self.leases and self.store is None:
            raise AnalysisError(
                "lease coordination needs a store (leases live in its "
                "directory and results are exchanged through it)"
            )

    def run(self, plan: ExperimentPlan, shard: Shard | None = None) -> PlanResult:
        """Execute *plan*, reusing cached results when a store is attached.

        With *shard*, only the owned sub-plan executes and a shard
        manifest is written to the store (required); the returned
        :class:`PlanResult` covers just the owned cells.  An empty owned
        sub-plan (more shards than cells) is valid and writes a manifest
        claiming no cells.

        Never raises on individual cell failures: completed cells are in
        ``.results`` (and the store), exhausted ones in ``.failures``.
        """
        if not len(plan):
            raise AnalysisError("cannot run an empty plan")
        sub = plan
        if shard is not None:
            if self.store is None:
                raise AnalysisError(
                    "sharded runs need a store (the shard manifest and "
                    "mergeable results live there)"
                )
            sub = plan.shard(shard.index, shard.count)

        unique: dict[str, SimulationConfig] = {}
        for cell in sub:
            unique.setdefault(cell.digest, cell.config)

        results: dict[str, SimulationResult] = {}
        cached = 0
        if self.store is not None:
            for digest in unique:
                hit = self.store.load(digest)
                if hit is not None:
                    results[digest] = hit
                    cached += 1

        missing = [d for d in unique if d not in results]
        if self.offline and missing:
            raise AnalysisError(
                f"offline run: store is missing {len(missing)} of "
                f"{len(unique)} required cell(s)"
            )

        execution = _PlanExecution(self, plan, missing, unique, results)
        execution.run()

        if self.store is not None:
            self.store.write_failures(
                plan.digest,
                [f.to_dict() for f in execution.failures.values()],
            )
        if shard is not None:
            self.store.write_manifest(
                ShardManifest(
                    plan_digest=plan.digest,
                    shard_index=shard.index,
                    shard_count=shard.count,
                    plan_cells=plan.cell_digests(),
                    cells=tuple(sorted(unique)),
                    git_sha=current_git_sha(),
                )
            )

        return PlanResult(
            plan=sub,
            results=results,
            computed=execution.computed,
            cached=cached,
            shard=shard,
            failures=execution.failures,
            retried=execution.retried,
            adopted=execution.adopted,
        )


class _PlanExecution:
    """One `Runner.run` invocation's retry/lease/pool state machine."""

    def __init__(
        self,
        runner: Runner,
        plan: ExperimentPlan,
        missing: Sequence[str],
        unique: dict[str, SimulationConfig],
        results: dict[str, SimulationResult],
    ) -> None:
        self.runner = runner
        self.policy: RetryPolicy = runner.retry
        self.store = runner.store
        self.results = results
        self.order = list(missing)
        self.states = {
            d: _CellState(
                digest=d,
                config=unique[d],
                rng=random.Random(f"backoff:{plan.digest}:{d}"),
            )
            for d in self.order
        }
        self.pending: set[str] = set(self.order)
        self.failures: dict[str, CellFailure] = {}
        self.retried: dict[str, int] = {}
        self.computed = 0
        self.adopted = 0
        self.coordinator: LeaseCoordinator | None = None
        if runner.leases:
            self.coordinator = LeaseCoordinator(
                self.store.root,
                plan.digest,
                worker_id=runner.worker_id,
                ttl=runner.lease_ttl,
            )
        self._last_beat = time.monotonic()

    # -- shared transitions --------------------------------------------------
    def _try_lease(self, st: _CellState) -> bool:
        """Hold (or obtain) the lease for *st*; True when we own it."""
        if self.coordinator is None or st.lease is not None:
            return True
        record = self.coordinator.acquire(st.digest)
        if record is None:
            return False
        st.lease = record
        return True

    def _adopt(self, st: _CellState) -> bool:
        """Pick up *st*'s result if a concurrent worker stored it."""
        if self.store is None:
            return False
        hit = self.store.load(st.digest)
        if hit is None:
            return False
        self.results[st.digest] = hit
        self.pending.discard(st.digest)
        self.adopted += 1
        return True

    def _complete(self, st: _CellState, result: SimulationResult) -> None:
        self.results[st.digest] = result
        self.pending.discard(st.digest)
        self.computed += 1
        if st.attempts:
            self.retried[st.digest] = st.attempts + 1
        if self.store is not None:
            self.store.save(st.digest, result)
        if st.lease is not None:
            self.coordinator.complete(st.lease)
            st.lease = None

    def _attempt_failed(
        self, st: _CellState, kind: str, error: str, *, retryable: bool = True
    ) -> None:
        """Record a failed attempt; quarantine or schedule the retry."""
        st.attempts += 1
        st.deadline = None
        if retryable and st.attempts < self.policy.max_attempts:
            st.eligible_at = time.monotonic() + self.policy.delay(st.attempts, st.rng)
            return
        self.failures[st.digest] = CellFailure(
            digest=st.digest,
            attempts=st.attempts,
            kind=kind,
            error=error,
            quarantined=True,
        )
        self.pending.discard(st.digest)
        if st.lease is not None:
            # Give the cell up so another worker may try its luck.
            self.coordinator.release(st.lease)
            st.lease = None

    def _heartbeat(self) -> None:
        """Renew owned leases roughly every ttl/3; handle losses."""
        if self.coordinator is None:
            return
        now = time.monotonic()
        if now - self._last_beat < self.runner.lease_ttl / 3:
            return
        self._last_beat = now
        for st in self.states.values():
            if st.lease is None:
                continue
            try:
                st.lease = self.coordinator.heartbeat(st.lease)
            except LeaseError:
                # Reclaimed or stolen. Keep computing — results are
                # bit-identical so a duplicate save is harmless — but
                # stop claiming the lease.
                st.lease = None

    # -- execution strategies ------------------------------------------------
    def run(self) -> None:
        if not self.order:
            return
        try:
            if self.runner.batch is not None and len(self.pending) > 1:
                self._run_batches()
            if not self.pending:
                return
            if self.runner.jobs <= 1 or len(self.order) <= 1:
                self._run_serial()
            else:
                self._run_pooled()
        finally:
            if self.coordinator is not None:
                for st in self.states.values():
                    if st.lease is not None:
                        self.coordinator.release(st.lease)
                        st.lease = None

    # -- batched pre-pass ----------------------------------------------------
    def _run_batches(self) -> None:
        """One-shot batched pre-pass over the missing cells.

        Compatible cells are packed ``runner.batch`` at a time and each
        pack is attempted exactly once as a single fused
        :class:`~repro.core.batch.BatchSimulation` (one pool task per
        pack when pooled).  A successful pack completes every member —
        stored, leased-complete, bit-identical to per-cell execution.  A
        failed attempt (one poison member fails the whole fused run)
        burns **no** per-cell attempts: the members simply stay pending
        and flow into the unchanged per-cell retry loop, which retries
        the innocent siblings individually and quarantines the real
        offender.  Cells whose lease another worker holds are left out
        of the pack and handled by the per-cell loop's adopt/steal
        machinery; acquired leases are kept across a failed batch so the
        per-cell attempt does not have to re-acquire them.
        """
        width = self.runner.batch
        groups: dict[str, list[str]] = {}
        for digest in self.order:
            if digest in self.pending:
                key = batch_compat_key(self.states[digest].config)
                groups.setdefault(key, []).append(digest)
        batches: list[list[str]] = []
        for members in groups.values():
            for i in range(0, len(members), width):
                chunk = members[i : i + width]
                if len(chunk) < 2:
                    continue
                owned = [d for d in chunk if self._try_lease(self.states[d])]
                if len(owned) >= 2:
                    batches.append(owned)
        if not batches:
            return
        if self.runner.jobs <= 1 or len(batches) <= 1:
            for members in batches:
                try:
                    results = _run_cell_batch(
                        [(d, self.states[d].config) for d in members]
                    )
                except Exception:
                    results = None
                self._finish_batch(members, results)
                self._heartbeat()
        else:
            pool = ProcessPoolExecutor(
                max_workers=min(self.runner.jobs, len(batches))
            )
            try:
                inflight = {
                    pool.submit(
                        _run_cell_batch,
                        [(d, self.states[d].config) for d in members],
                    ): members
                    for members in batches
                }
                for future in as_completed(list(inflight)):
                    try:
                        results = future.result()
                    except Exception:
                        results = None
                    self._finish_batch(inflight[future], results)
                    self._heartbeat()
            finally:
                pool.shutdown(wait=False, cancel_futures=True)

    def _finish_batch(
        self, members: list[str], results: list[SimulationResult] | None
    ) -> None:
        """Complete a pack's members, or leave them pending on failure."""
        if results is None:
            return
        for digest, result in zip(members, results):
            self._complete(self.states[digest], result)

    def _run_serial(self) -> None:
        """Inline execution with retries (no per-cell timeout enforcement)."""
        queue = deque(self.order)
        while queue:
            digest = queue.popleft()
            if digest not in self.pending:
                continue
            st = self.states[digest]
            if not self._try_lease(st):
                if self._adopt(st):
                    continue
                time.sleep(_POLL)  # held by a live worker; check back
                queue.append(digest)
                continue
            now = time.monotonic()
            if st.eligible_at > now:
                time.sleep(st.eligible_at - now)
            try:
                result = _run_cell(digest, st.config)
            except Exception as exc:
                self._attempt_failed(
                    st, "error", describe_error(exc), retryable=is_retryable(exc)
                )
                if digest in self.pending:
                    queue.append(digest)
            else:
                self._complete(st, result)
            self._heartbeat()

    def _run_pooled(self) -> None:
        workers = min(self.runner.jobs, len(self.order))
        pool = ProcessPoolExecutor(max_workers=workers)
        inflight: dict[Future, str] = {}
        launch: deque[str] = deque(self.order)
        foreign: set[str] = set()  # leased by another live worker
        last_foreign_poll = 0.0
        try:
            while self.pending:
                now = time.monotonic()
                broken = False

                # Launch every eligible cell while worker slots are free.
                # A dying worker can break the pool mid-submit; the cell
                # goes back on the queue (no attempt burned — it never
                # started) and the pool is rebuilt below.
                deferred: list[str] = []
                while launch and len(inflight) < workers:
                    digest = launch.popleft()
                    if digest not in self.pending:
                        continue
                    st = self.states[digest]
                    if st.eligible_at > now:
                        deferred.append(digest)
                        continue
                    if not self._try_lease(st):
                        foreign.add(digest)
                        continue
                    try:
                        future = pool.submit(_run_cell, digest, st.config)
                    except BrokenProcessPool:
                        broken = True
                        launch.appendleft(digest)
                        break
                    if self.policy.cell_timeout is not None:
                        st.deadline = now + self.policy.cell_timeout
                    inflight[future] = digest
                launch.extend(deferred)

                # Cells leased elsewhere: adopt stored results, reclaim
                # expired leases, and steal from the slowest live holder
                # when we have nothing else to do.
                if foreign and now - last_foreign_poll >= _POLL:
                    last_foreign_poll = now
                    for digest in sorted(foreign):
                        st = self.states[digest]
                        if self._adopt(st):
                            foreign.discard(digest)
                        elif self._try_lease(st):
                            foreign.discard(digest)
                            launch.append(digest)
                    if not inflight and not launch and foreign:
                        stolen = self._steal_slowest(foreign)
                        if stolen is not None:
                            foreign.discard(stolen)
                            launch.append(stolen)

                if inflight:
                    done, _ = wait(
                        list(inflight), timeout=_POLL, return_when=FIRST_COMPLETED
                    )
                    for future in done:
                        digest = inflight.pop(future)
                        st = self.states[digest]
                        try:
                            result = future.result()
                        except BrokenProcessPool:
                            broken = True
                            self._attempt_failed(
                                st, "worker-lost", "worker process died"
                            )
                        except Exception as exc:
                            self._attempt_failed(
                                st,
                                "error",
                                describe_error(exc),
                                retryable=is_retryable(exc),
                            )
                        else:
                            self._complete(st, result)
                        if digest in self.pending:
                            launch.append(digest)

                    # Per-cell wall-clock timeouts: an overrunning
                    # simulation cannot be cancelled, so its worker (and
                    # with it the whole pool) is terminated and rebuilt.
                    now = time.monotonic()
                    overdue = [
                        (future, digest)
                        for future, digest in inflight.items()
                        if self.states[digest].deadline is not None
                        and now > self.states[digest].deadline
                    ]
                    if overdue:
                        broken = True
                        for future, digest in overdue:
                            inflight.pop(future)
                            st = self.states[digest]
                            self._attempt_failed(
                                st,
                                "timeout",
                                f"cell exceeded {self.policy.cell_timeout}s "
                                f"wall clock",
                            )
                            if digest in self.pending:
                                launch.append(digest)
                        _terminate_workers(pool)

                if broken:
                    # The executor is unusable; in-flight siblings retry
                    # in a fresh pool (one attempt each — they were
                    # innocent, but their partial work is lost).
                    for future, digest in inflight.items():
                        st = self.states[digest]
                        self._attempt_failed(st, "worker-lost", "worker pool torn down")
                        if digest in self.pending:
                            launch.append(digest)
                    inflight.clear()
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = ProcessPoolExecutor(max_workers=workers)
                elif not inflight and self.pending:
                    # Nothing running: we are waiting out a backoff delay
                    # or a foreign lease.
                    time.sleep(_POLL)

                self._heartbeat()
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def _steal_slowest(self, foreign: set[str]) -> str | None:
        """Steal the oldest lease that has been held suspiciously long.

        "Suspiciously long" is two TTLs: a live holder heartbeats every
        ttl/3, so a lease that old belongs to a worker much slower than
        us (or one whose clock stalled).  Idle-stealing it keeps the
        sweep's tail short; the displaced holder finds out on its next
        heartbeat and both results, if computed, are bit-identical.
        """
        coordinator = self.coordinator
        threshold = 2 * coordinator.ttl
        now = coordinator.clock()
        best: tuple[float, str] | None = None
        for digest in sorted(foreign):
            record = coordinator.read(digest)
            if record is None:
                continue
            age = now - record.acquired_at
            if age >= threshold and (best is None or record.acquired_at < best[0]):
                best = (record.acquired_at, digest)
        if best is None:
            return None
        record = coordinator.steal(best[1])
        if record is None:
            return None
        self.states[best[1]].lease = record
        return best[1]


def describe_error(exc: BaseException) -> str:
    """Compact one-line rendering of an exception for failure records."""
    text = f"{type(exc).__name__}: {exc}"
    return text if len(text) <= 500 else text[:497] + "..."


def _terminate_workers(pool: ProcessPoolExecutor) -> None:
    """Hard-kill a pool's worker processes (timeout enforcement).

    Reaches into the executor because ``concurrent.futures`` offers no
    public kill switch; a missing attribute just degrades to waiting for
    the slow cell to finish on its own.
    """
    for process in list(getattr(pool, "_processes", {}).values()):
        try:
            process.terminate()
        except OSError:
            pass
