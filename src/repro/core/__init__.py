"""Simulation driver and experiment harness."""

from repro.core.results import SimulationResult
from repro.core.simulation import Simulation, run_simulation
from repro.core.experiment import (
    LoadSweepResult,
    SweepPoint,
    average_results,
    run_load_sweep,
    run_point,
)

__all__ = [
    "LoadSweepResult",
    "Simulation",
    "SimulationResult",
    "SweepPoint",
    "average_results",
    "run_load_sweep",
    "run_point",
    "run_simulation",
]
