"""Simulation driver and experiment harness."""

from repro.core.results import SimulationResult
from repro.core.simulation import Simulation, run_simulation
from repro.core.batch import (
    BatchSimulation,
    batch_compat_key,
    run_simulation_batch,
)
from repro.core.experiment import (
    LoadSweepResult,
    SweepPoint,
    average_results,
    run_load_sweep,
    run_point,
)

__all__ = [
    "BatchSimulation",
    "LoadSweepResult",
    "Simulation",
    "SimulationResult",
    "SweepPoint",
    "average_results",
    "batch_compat_key",
    "run_load_sweep",
    "run_point",
    "run_simulation",
    "run_simulation_batch",
]
