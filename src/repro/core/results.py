"""Result containers for single runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.config import SimulationConfig
from repro.metrics.fairness import FairnessMetrics, fairness_from_counts

__all__ = ["SimulationResult"]


@dataclass
class SimulationResult:
    """Everything measured by one simulation run.

    ``latency_breakdown`` holds the five Figure-3 component means;
    ``injected_per_router`` is the Figure-4/6 series; ``fairness`` the
    Table-II/III row.  ``oracle`` is the simulation oracle's verdict
    (:meth:`repro.metrics.oracle.OracleReport.to_dict`) when the run was
    audited (``config.oracle``), else ``None``.
    """

    config: SimulationConfig
    routing: str
    pattern: str
    offered_load: float
    accepted_load: float
    avg_latency: float
    latency_std: float
    max_latency: float
    latency_breakdown: dict[str, float]
    delivered_packets: int
    generated_packets: int
    injected_per_router: list[int]
    delivered_per_router: list[int]
    in_flight_at_end: int
    events_processed: int
    oracle: dict[str, Any] | None = None
    fairness: FairnessMetrics = field(init=False)

    def __post_init__(self) -> None:
        self.fairness = fairness_from_counts(self.injected_per_router)

    # ------------------------------------------------------------------
    def group_injections(self, group: int) -> list[int]:
        """Per-router injection counts restricted to one group (Fig. 4/6)."""
        a = self.config.network.a
        return self.injected_per_router[group * a : (group + 1) * a]

    def summary(self) -> str:
        """One-line human-readable run summary."""
        return (
            f"[{self.routing:12s} | {self.pattern:6s}] "
            f"offered={self.offered_load:.3f} accepted={self.accepted_load:.3f} "
            f"latency={self.avg_latency:.1f} "
            f"maxmin={self.fairness.max_min_ratio:.3g} "
            f"cov={self.fairness.cov:.4f}"
        )
