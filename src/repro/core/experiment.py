"""Experiment harness: load sweeps and multi-seed averaging.

The paper's figures plot latency/throughput against offered load, each
point averaged over 3 simulations (Section IV-A).  :func:`run_load_sweep`
reproduces that protocol; :func:`run_point` is one (mechanism, pattern,
load) cell, used by the fairness tables.

This module is a thin compatibility shim over the
:mod:`repro.exec` subsystem: both entry points build a declarative
:class:`repro.exec.plan.ExperimentPlan` and hand it to a
:class:`repro.exec.runner.Runner`.  ``jobs`` fans the cells out over a
process pool (``jobs=1``, the default, runs inline); ``store`` points at
an on-disk result cache directory.  Results are identical for any
``jobs`` value — per-cell seeds are derived up front via ``split_seed``.
"""

from __future__ import annotations

import os
from collections.abc import Sequence

from repro.config import SimulationConfig
from repro.errors import AnalysisError
from repro.exec.aggregate import (
    LoadSweepResult,
    SweepPoint,
    average_results,
)
from repro.exec.plan import ExperimentPlan
from repro.exec.runner import Runner
from repro.exec.store import ResultStore

__all__ = [
    "SweepPoint",
    "LoadSweepResult",
    "run_point",
    "run_load_sweep",
    "average_results",
]


def run_point(
    config: SimulationConfig,
    *,
    seeds: int = 1,
    jobs: int = 1,
    store: ResultStore | str | os.PathLike | None = None,
) -> SweepPoint:
    """Run ``seeds`` independent simulations of *config* and average them."""
    plan = ExperimentPlan.point(config, seeds=seeds)
    executed = Runner(jobs=jobs, store=store).run(plan)
    executed.raise_for_failures()
    return executed.point(config)


def run_load_sweep(
    config: SimulationConfig,
    loads: Sequence[float],
    *,
    seeds: int = 1,
    jobs: int = 1,
    store: ResultStore | str | os.PathLike | None = None,
) -> LoadSweepResult:
    """Sweep offered load, producing one latency/throughput curve."""
    if not loads:
        raise AnalysisError("run_load_sweep needs at least one load")
    plan = ExperimentPlan.sweep(config, loads, seeds=seeds)
    executed = Runner(jobs=jobs, store=store).run(plan)
    executed.raise_for_failures()
    return executed.sweep(config, loads)
