"""Experiment harness: load sweeps and multi-seed averaging.

The paper's figures plot latency/throughput against offered load, each
point averaged over 3 simulations (Section IV-A).  :func:`run_load_sweep`
reproduces that protocol; :func:`run_point` is one (mechanism, pattern,
load) cell, used by the fairness tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.config import SimulationConfig
from repro.core.results import SimulationResult
from repro.core.simulation import run_simulation
from repro.errors import AnalysisError
from repro.metrics.fairness import FairnessMetrics, fairness_from_counts
from repro.utils.rng import split_seed

__all__ = [
    "SweepPoint",
    "LoadSweepResult",
    "run_point",
    "run_load_sweep",
    "average_results",
]


@dataclass(frozen=True)
class SweepPoint:
    """Seed-averaged metrics at one offered load."""

    offered_load: float
    accepted_load: float
    avg_latency: float
    latency_breakdown: dict[str, float]
    fairness: FairnessMetrics
    seeds: int

    def as_tuple(self) -> tuple[float, float, float]:
        """(offered, accepted, latency) for quick plotting."""
        return (self.offered_load, self.accepted_load, self.avg_latency)


@dataclass(frozen=True)
class LoadSweepResult:
    """A full latency/throughput curve for one mechanism and pattern."""

    routing: str
    pattern: str
    points: tuple[SweepPoint, ...]

    def latency_series(self) -> list[tuple[float, float]]:
        """(offered load, mean latency) pairs — the left panels of Fig. 2/5."""
        return [(pt.offered_load, pt.avg_latency) for pt in self.points]

    def throughput_series(self) -> list[tuple[float, float]]:
        """(offered, accepted) pairs — the right panels of Fig. 2/5."""
        return [(pt.offered_load, pt.accepted_load) for pt in self.points]

    def saturation_throughput(self) -> float:
        """Highest accepted load along the sweep (the curve's plateau)."""
        return max(pt.accepted_load for pt in self.points)


def average_results(results: Sequence[SimulationResult]) -> SweepPoint:
    """Average several same-configuration runs into one sweep point.

    Per-router injection counts are averaged element-wise before the
    fairness metrics are recomputed, matching how the paper reports
    fractional "Min inj" values (e.g. 31.67 = a 3-seed average).
    """
    if not results:
        raise AnalysisError("average_results needs at least one result")
    n = len(results)
    counts = [
        sum(r.injected_per_router[i] for r in results) / n
        for i in range(len(results[0].injected_per_router))
    ]
    breakdown = {
        k: sum(r.latency_breakdown[k] for r in results) / n
        for k in results[0].latency_breakdown
    }
    return SweepPoint(
        offered_load=sum(r.offered_load for r in results) / n,
        accepted_load=sum(r.accepted_load for r in results) / n,
        avg_latency=sum(r.avg_latency for r in results) / n,
        latency_breakdown=breakdown,
        fairness=fairness_from_counts(counts),
        seeds=n,
    )


def run_point(
    config: SimulationConfig,
    *,
    seeds: int = 1,
) -> SweepPoint:
    """Run ``seeds`` independent simulations of *config* and average them."""
    if seeds < 1:
        raise AnalysisError("seeds must be >= 1")
    results = [
        run_simulation(config.with_(seed=split_seed(config.seed, 100 + s)))
        for s in range(seeds)
    ]
    return average_results(results)


def run_load_sweep(
    config: SimulationConfig,
    loads: Sequence[float],
    *,
    seeds: int = 1,
) -> LoadSweepResult:
    """Sweep offered load, producing one latency/throughput curve."""
    if not loads:
        raise AnalysisError("run_load_sweep needs at least one load")
    points = []
    pattern_name = None
    for load in loads:
        cfg = config.with_traffic(load=load)
        pt = run_point(cfg, seeds=seeds)
        points.append(pt)
    # Recover the pattern display name from a cheap construction.
    from repro.topology.dragonfly import DragonflyTopology
    from repro.traffic.patterns import make_traffic

    topo = DragonflyTopology(config.network)
    pattern_name = make_traffic(config.traffic, topo).name
    return LoadSweepResult(
        routing=config.routing,
        pattern=pattern_name,
        points=tuple(points),
    )
