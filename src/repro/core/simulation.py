"""The :class:`Simulation`: wiring, traffic generation and the run loop.

A simulation owns one event queue, one topology, one router per topology
position (wired through their bidirectional ports), one routing mechanism,
one traffic pattern and one stats collector.  ``run()`` executes
``warmup + measure`` cycles with a deadlock watchdog and returns a
:class:`repro.core.results.SimulationResult`.
"""

from __future__ import annotations

import os
from math import log

from repro.config import SimulationConfig
from repro.core.results import SimulationResult
from repro.engine import OP_GEN, EventQueue
from repro.engine.kernel import LowerState, resolve_backend, resolve_lower
from repro.engine.soa import SoAStore
from repro.errors import OracleError, SimulationError
from repro.hardware.packet import Packet
from repro.hardware.router import Router
from repro.metrics.collector import StatsCollector
from repro.metrics.oracle import SimOracle
from repro.routing.factory import make_routing
from repro.topology.dragonfly import DragonflyTopology
from repro.traffic.patterns import make_traffic
from repro.utils.rng import geometric_gap, make_rng, split_seed

__all__ = ["Simulation", "run_simulation"]

# RNG sub-stream ids (see repro.utils.rng.split_seed)
_STREAM_TRAFFIC = 1
_STREAM_ROUTING = 2
_STREAM_PATTERN = 3

# ----------------------------------------------------------------------
# Topology warm-start cache (engine-level; multiplies every speedup by
# sweep width).  DragonflyTopology is config-pure: every table is
# precomputed in __init__ from (NetworkConfig, arrangement_seed) and
# nothing mutates it afterwards (routers and mechanisms only read), so
# one instance can back any number of simulations.  NetworkConfig is a
# frozen dataclass, so the (config, seed) tuple key has exactly the
# same identity semantics as the topology sub-config digest.  The cache
# is per process — each Runner worker warms it once per topology and
# every later cell of the sweep skips construction.  Disable with
# REPRO_TOPO_CACHE=0.
_TOPO_CACHE: dict[tuple, DragonflyTopology] = {}
_TOPO_CACHE_MAX = 8  # a sweep rarely mixes topologies; keep it tiny


def _shared_topology(network, arrangement_seed: int) -> DragonflyTopology:
    """A (possibly cached) topology for *network* + *arrangement_seed*."""
    if os.environ.get("REPRO_TOPO_CACHE", "1").lower() in (
        "0",
        "false",
        "off",
        "no",
    ):
        return DragonflyTopology(network, arrangement_seed=arrangement_seed)
    key = (network, arrangement_seed)
    topo = _TOPO_CACHE.get(key)
    if topo is None:
        if len(_TOPO_CACHE) >= _TOPO_CACHE_MAX:
            # FIFO eviction: insertion order approximates sweep order.
            _TOPO_CACHE.pop(next(iter(_TOPO_CACHE)))
        topo = DragonflyTopology(network, arrangement_seed=arrangement_seed)
        _TOPO_CACHE[key] = topo
    return topo


class Simulation:
    """One fully wired Dragonfly simulation instance."""

    def __init__(
        self,
        config: SimulationConfig,
        *,
        check_decomposition: bool = False,
        engine_backend: str | None = None,
        engine_lower: str | None = None,
        soa: SoAStore | None = None,
        soa_base: int = 0,
    ) -> None:
        self.config = config
        # Strict timestamp validation defaults on (REPRO_ENGINE_STRICT=0
        # disables it for production sweeps); the typed activation path
        # the routers use never validates either way.
        self.engine = EventQueue()
        # Engine backend (see repro.engine.kernel): the explicit argument
        # wins over REPRO_ENGINE_BACKEND; the default 'auto' degrades to
        # the pure-Python kernel when the compiled extension is absent.
        # Deliberately NOT part of SimulationConfig: backends are
        # bit-identical by contract, so the backend is an execution
        # detail and must not perturb config digests/serialisation.
        backend = resolve_backend(engine_backend)
        self.engine_backend = backend.name
        self.topo = _shared_topology(
            config.network, split_seed(config.seed, 7)
        )
        self.rng_traffic = make_rng(split_seed(config.seed, _STREAM_TRAFFIC))
        self.rng_routing = make_rng(split_seed(config.seed, _STREAM_ROUTING))
        self.stats = StatsCollector(
            config.warmup_cycles,
            config.total_cycles,
            self.topo.num_routers,
            self.topo.num_nodes,
            check_decomposition=check_decomposition,
        )

        # Structure-of-arrays store for the hot router state (flat typed
        # buffers for the compiled backend, flat lists for the Python
        # one), then the router views that fill their segments.  A
        # BatchSimulation passes a shared widened store plus this cell's
        # base row (`soa_base`): the routers then occupy rows
        # [soa_base, soa_base + num_routers) of the batch-axis layout.
        rc = config.router
        self.soa_base = soa_base
        if soa is None:
            self.soa = SoAStore(
                self.topo.num_routers,
                self.topo.radix,
                max(rc.local_vcs, rc.global_vcs, 1),
                typed=backend.typed,
            )
        else:
            self.soa = soa

        # Routers and wiring.
        self.routers = [Router(self, rid) for rid in range(self.topo.num_routers)]
        if soa is None:
            self.soa.routers = self.routers
        else:
            # Shared store: append in cell order so store.routers lists
            # every router of the batch in erid order.
            self.soa.routers.extend(self.routers)
        self._wire()
        if backend.name != "python":
            self.engine.bind_backend(backend, self.soa)

        # Routing mechanism (needs self.routers for PiggyBack state).
        self.routing = make_routing(config.routing, self)

        # Traffic.  Time-varying scenario patterns read the engine clock.
        self.traffic = make_traffic(
            config.traffic, self.topo, seed=split_seed(config.seed, _STREAM_PATTERN)
        )
        self.traffic.bind_clock(self.engine)
        self.oracle = SimOracle(self.traffic) if config.oracle else None
        self._gen_prob = config.traffic.load / config.traffic.packet_size
        # Precomputed log(1 - p) for the inlined geometric-gap draw in
        # _gen_event (same division as utils.rng.geometric_gap, so the
        # sampled gaps are bit-identical; None when p == 1).
        self._log_q = log(1.0 - self._gen_prob) if self._gen_prob < 1.0 else None
        self._pid = 0
        self._num_nodes = self.topo.num_nodes
        self._end_time = config.total_cycles
        # node -> (its router, its node port): saves two divmods per
        # generated packet in the generator activation, and one constant
        # (OP_GEN, node) record per node so rescheduling never allocates.
        p = self.topo.p
        self._inject_map = [
            (self.routers[node // p], node % p)
            for node in range(self.topo.num_nodes)
        ]
        self._gen_recs = [(OP_GEN, node) for node in range(self.topo.num_nodes)]

        # Contention-free hop service costs for the latency ledger.
        psize = config.traffic.packet_size
        pipe = config.router.pipeline_latency
        net = config.network
        self._c_local = pipe + psize + net.local_link_latency
        self._c_global = pipe + psize + net.global_link_latency
        self._c_eject = pipe + psize + net.node_link_latency
        self._psize = psize
        # Dense minimal-path base-latency table, built once per topology
        # + cost triple and shared through the _TOPO_CACHE warm start
        # (replaces the old unbounded per-simulation dict memo; the
        # lowered C generator indexes the same table directly).
        self._ms_table = self.topo.min_service_table(
            self._c_local, self._c_global, self._c_eject
        )

        # Lowered OP_GEN / OP_DELIVER fast path (REPRO_ENGINE_LOWER; see
        # repro.engine.kernel.LowerState).  Decided before _bind_hot so
        # the lowered on_injection hook is the one frozen into each
        # router's hot tuples; oracle runs, decomposition-checked runs
        # and patterns without a lowering descriptor keep the callback
        # path untouched.
        mode = resolve_lower(engine_lower)
        descriptor = None
        if mode != "0" and self.oracle is None and not check_decomposition:
            descriptor = self.traffic.lower()
        self._lower = (
            LowerState(self, descriptor) if descriptor is not None else None
        )
        # The pattern instance the descriptor was taken from: replacing
        # ``sim.traffic`` after construction (tests, custom patterns)
        # invalidates the lowering, which start() detects and undoes.
        self._lower_src = self.traffic if self._lower is not None else None
        if self._lower is not None:
            low_inj = self._lower.on_injection
            for r in self.routers:
                r._on_injection = low_inj
        for r in self.routers:
            r.routing = self.routing
            r._bind_hot()

        # Phase-boundary hooks: the queue dispatches ejections (OP_DELIVER)
        # into the collector (directly when no oracle audits deliveries)
        # and generator activations (OP_GEN) into `_gen_event` — no
        # per-event callback tuples on either path.  A lowered run then
        # re-points both at the LowerState mirrors.
        self.engine.bind_sink(
            self.stats.on_delivery if self.oracle is None else self.deliver
        )
        self.engine.bind_gen(self._gen_event)
        if self._lower is not None:
            self.engine.bind_lower(self._lower)

        # Deadlock watchdog state.
        self._watch_delivered = -1

    # ------------------------------------------------------------------
    def _wire(self) -> None:
        """Connect every bidirectional local/global port to its peer."""
        topo = self.topo
        for rid, router in enumerate(self.routers):
            g, i = divmod(rid, topo.a)
            for port in range(topo.first_local_port, topo.first_global_port):
                j = topo.local_port_target(i, port)
                peer = self.routers[topo.router_id(g, j)]
                peer_port = topo.local_port(j, i)
                router.out_peer[port] = (peer, peer_port)
                router.upstream[port] = (peer, peer_port)
            for port in range(topo.first_global_port, topo.radix):
                pg, pi, pport = topo.global_port_peer(g, i, port)
                peer = self.routers[topo.router_id(pg, pi)]
                router.out_peer[port] = (peer, pport)
                router.upstream[port] = (peer, pport)

    # ------------------------------------------------------------------
    # traffic generation
    # ------------------------------------------------------------------
    def _min_service(self, src_router: int, dst_router: int) -> int:
        """Contention-free latency of the minimal path (the Fig. 3 base).

        A read of the topology-owned dense table (see
        :meth:`~repro.topology.dragonfly.DragonflyTopology.min_service_table`
        for the path-cost derivation).
        """
        return self._ms_table[src_router * self.topo.num_routers + dst_router]

    def _make_packet(self, src_node: int, dst_node: int, now: int) -> Packet:
        topo = self.topo
        p = topo.p
        a = topo.a
        src_router = src_node // p
        dst_router = dst_node // p
        base = self._ms_table[src_router * topo.num_routers + dst_router]
        self._pid = pid = self._pid + 1
        return Packet(
            pid,
            self._psize,
            src_node,
            src_router,
            src_router // a,
            dst_node,
            dst_router,
            dst_router // a,
            dst_router % a,
            dst_node % p,
            now,
            base,
        )

    def _gen_event(self, node: int) -> None:
        """Generator activation (OP_GEN): one Bernoulli-process firing."""
        now = self.engine.now
        if now >= self._end_time:
            return
        rng = self.rng_traffic
        dst = self.traffic.dest(node, rng)
        if dst is not None:
            # Engine-boundary contract: a non-None destination must be a
            # valid foreign node id (see repro.traffic.base); None means
            # "generate nothing this cycle" and is always legal.
            if dst == node or dst < 0 or dst >= self._num_nodes:
                raise SimulationError(
                    f"traffic pattern {self.traffic.name!r} returned invalid "
                    f"destination {dst} for source node {node} "
                    f"(valid: [0, {self._num_nodes}) excluding the source)"
                )
            # Inlined _make_packet (the helper remains the documented
            # reference and the path for direct callers).
            topo = self.topo
            p = topo.p
            a = topo.a
            src_router = node // p
            dst_router = dst // p
            base = self._ms_table[src_router * topo.num_routers + dst_router]
            self._pid = pid = self._pid + 1
            pkt = Packet(
                pid,
                self._psize,
                node,
                src_router,
                src_router // a,
                dst,
                dst_router,
                dst_router // a,
                dst_router % a,
                dst % p,
                now,
                base,
            )
            self.stats.on_generate(now, pkt.size)
            if self.oracle is not None:
                self.oracle.on_generate(pkt)
            router, node_port = self._inject_map[node]
            router.inject(node_port, pkt, now)
        # Inlined geometric_gap(rng, self._gen_prob) over the precomputed
        # log(1 - p) — identical draws, one RNG call, no math.log(1 - p).
        log_q = self._log_q
        if log_q is None:
            gap = 1
        else:
            u = rng.random()
            if u == 0.0:
                gap = 1
            else:
                gap = int(log(u) / log_q) + 1
                if gap < 1:
                    gap = 1
        self.engine.post(now + gap, self._gen_recs[node])

    # ------------------------------------------------------------------
    def deliver(self, pkt: Packet, now: int | None = None) -> None:
        """Sink callback: a packet's tail reached its destination node.

        The engine passes the current cycle; direct callers may omit it.
        """
        if now is None:
            now = self.engine.now
        self.stats.on_delivery(pkt, now)
        if self.oracle is not None:
            self.oracle.on_delivery(pkt, now)

    # ------------------------------------------------------------------
    def _watchdog(self) -> None:
        # A lowered run accumulates the all-time counters in the flat
        # stat buffers; the collector only learns them at _collect(),
        # where commit() *adds* them to whatever the collector already
        # holds.  The watchdog therefore observes the same union — a
        # direct contribution to the collector (e.g. a packet injected
        # outside the generator path) counts as in flight either way.
        lower = self._lower
        delivered = self.stats.total_delivered
        in_flight = self.stats.in_flight()
        if lower is not None:
            delivered += lower.total_delivered()
            in_flight += lower.in_flight()
        if delivered == self._watch_delivered and in_flight > 0:
            raise SimulationError(
                f"deadlock suspected at cycle {self.engine.now}: "
                f"{in_flight} packets in flight but no delivery "
                f"for {self.config.deadlock_cycles} cycles "
                f"(routing={self.config.routing}, "
                f"pattern={self.config.traffic.pattern}, "
                f"load={self.config.traffic.load})"
            )
        self._watch_delivered = delivered
        if self.engine.now < self._end_time:
            self.engine.schedule(self.config.deadlock_cycles, self._watchdog)

    # ------------------------------------------------------------------
    def _unlower(self) -> None:
        """Drop the lowered fast path and restore the callback hooks.

        Called by :meth:`start` when ``self.traffic`` is no longer the
        pattern instance the lowering descriptor was taken from — the
        replacement's ``dest()``/``active()`` must be consulted, so the
        run falls back to the (bit-identical) callback path.  Runs
        before the first drain, hence before the compiled kernel caches
        its state.
        """
        self._lower = None
        self._lower_src = None
        on_inj = self.stats.on_injection
        for r in self.routers:
            r._on_injection = on_inj
            r._bind_hot()
        self.engine.unbind_lower(
            self._gen_event,
            self.stats.on_delivery if self.oracle is None else self.deliver,
        )

    def start(self) -> None:
        """Post the initial generator/watchdog records (no stepping yet).

        Split out of :meth:`run` so a :class:`~repro.core.batch.
        BatchSimulation` can start every member cell before draining
        their calendars through one fused loop.
        """
        if self._lower is not None and self.traffic is not self._lower_src:
            self._unlower()
        # Desynchronised start: each node's Bernoulli process begins at an
        # independently drawn geometric offset, as if it had been running
        # before cycle 0.
        for node in range(self.topo.num_nodes):
            if not self.traffic.active(node):
                continue
            offset = geometric_gap(self.rng_traffic, self._gen_prob) - 1
            self.engine.post(offset, self._gen_recs[node])
        self.engine.schedule(self.config.deadlock_cycles, self._watchdog)

    def run(self) -> SimulationResult:
        """Execute the configured warmup + measurement and collect results."""
        self.start()
        self.engine.run_until(self._end_time)
        return self._collect()

    def _collect(self) -> SimulationResult:
        """Post-horizon oracle audit + result assembly (end of run())."""
        if self._lower is not None:
            self._lower.commit(self.stats)
        oracle_verdict = None
        if self.oracle is not None:
            self._drain()
            oracle_verdict = self.oracle.verify(self).to_dict()

        stats = self.stats
        return SimulationResult(
            config=self.config,
            routing=self.config.routing,
            pattern=self.traffic.name,
            offered_load=stats.offered_load(),
            accepted_load=stats.accepted_load(),
            avg_latency=stats.latency.mean,
            latency_std=stats.latency.std,
            max_latency=stats.latency.max if stats.latency.n else 0.0,
            latency_breakdown=stats.breakdown.means(),
            delivered_packets=stats.delivered_packets,
            generated_packets=stats.generated_packets,
            injected_per_router=list(stats.injected_per_router),
            delivered_per_router=list(stats.delivered_per_router),
            in_flight_at_end=stats.in_flight(),
            events_processed=self.engine.processed,
            oracle=oracle_verdict,
        )

    def _drain(self) -> None:
        """Flush the network after the horizon so the oracle can audit it.

        Generators stop rescheduling at ``_end_time`` and no component
        self-perpetuates, so the event queue empties once every in-flight
        packet lands.  A queue still busy ``deadlock_cycles`` past the
        horizon means something is stuck or leaking events — that is an
        oracle failure in its own right.
        """
        limit = self._end_time + self.config.deadlock_cycles
        if not self.engine.drain(limit):
            raise OracleError(
                f"network failed to drain within {self.config.deadlock_cycles}"
                f" cycles past the horizon: {self.engine.pending} events "
                f"still pending, {self.stats.in_flight()} packets in flight "
                f"(routing={self.config.routing}, "
                f"pattern={self.traffic.name}, "
                f"load={self.config.traffic.load})"
            )


def run_simulation(
    config: SimulationConfig,
    *,
    check_decomposition: bool = False,
    engine_backend: str | None = None,
    engine_lower: str | None = None,
) -> SimulationResult:
    """Build and run one simulation (convenience wrapper)."""
    return Simulation(
        config,
        check_decomposition=check_decomposition,
        engine_backend=engine_backend,
        engine_lower=engine_lower,
    ).run()
