"""Batched multi-cell stepping: K independent simulations, one drain loop.

A sweep is mostly the *same* network simulated many times with only the
offered load (and sometimes the seed) varying.  :class:`BatchSimulation`
packs K such cells into one widened :class:`~repro.engine.soa.SoAStore`
— the store simply grows a **cell axis**, ``erid = cell * R +
router_id`` — and steps all of them through a single fused drain loop
(``EngineBackend.drain_batch``) instead of K separate interpreter/FFI
round-trip sequences.

Correctness is structural, not statistical: member cells never post into
each other's calendars (each keeps its own :class:`EventQueue`, routers,
RNG streams and stats), the fused loop always drains the globally
earliest pending bucket, and ties between cells resolve to the lowest
member index — which is semantically free because the cells are
independent.  Every member therefore observes exactly the operation
sequence it would have observed running alone, and the K unpacked
:class:`~repro.core.results.SimulationResult` objects are bit-identical
to unbatched runs (pinned by the batch equivalence suite and golden
digests).

Which cells may share a batch is decided by :func:`batch_compat_key`:
everything except ``traffic.load`` and ``seed`` must match, so a load
sweep (or a seed-replicated point) batches naturally while cells with
different topologies, routings or horizons never mix.
"""

from __future__ import annotations

import json
from collections.abc import Sequence
from dataclasses import asdict

from repro.config import SimulationConfig
from repro.core.results import SimulationResult
from repro.core.simulation import Simulation, _shared_topology
from repro.engine.kernel import resolve_backend
from repro.engine.soa import SoAStore
from repro.utils.rng import split_seed

__all__ = ["BatchSimulation", "batch_compat_key", "run_simulation_batch"]


def batch_compat_key(config: SimulationConfig) -> str:
    """Canonical key identifying the batchable equivalence class of *config*.

    Two cells may share a :class:`BatchSimulation` iff their keys are
    equal: the key is the config's canonical JSON with ``traffic.load``
    and ``seed`` masked out — the two axes a batch is allowed to vary.
    Everything else (topology, routing, VC counts, horizon, scenario
    fields, oracle flag) must match so the members agree on store
    geometry and drain horizon.
    """
    data = asdict(config)
    data["seed"] = None
    data["traffic"]["load"] = None
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


class BatchSimulation:
    """K batch-compatible simulations sharing one store and drain loop.

    Members are fully independent simulations — own event queue, routers,
    routing mechanism, traffic pattern, RNG streams, stats, oracle — that
    happen to keep their hot per-router state in disjoint row ranges of
    one shared :class:`SoAStore` (member *i* owns rows
    ``[i * R, (i + 1) * R)``).  :meth:`run` starts every member, drains
    all K calendars through the backend's fused batch loop, then collects
    one :class:`SimulationResult` per member, in input order.
    """

    def __init__(
        self,
        configs: Sequence[SimulationConfig],
        *,
        engine_backend: str | None = None,
        engine_lower: str | None = None,
        check_decomposition: bool = False,
    ) -> None:
        if not configs:
            raise ValueError("BatchSimulation needs at least one config")
        key = batch_compat_key(configs[0])
        for i, cfg in enumerate(configs[1:], start=1):
            if batch_compat_key(cfg) != key:
                raise ValueError(
                    f"configs[{i}] is not batch-compatible with configs[0]: "
                    f"batched cells may differ only in traffic.load and seed "
                    f"(routing={cfg.routing!r} vs {configs[0].routing!r}, "
                    f"pattern={cfg.traffic.pattern!r} vs "
                    f"{configs[0].traffic.pattern!r})"
                )
        self.configs = list(configs)
        backend = resolve_backend(engine_backend)
        self.backend = backend

        # Store geometry from the first member's topology (identical for
        # every member: NetworkConfig and RouterConfig are part of the
        # compat key; the arrangement seed only permutes global links and
        # never changes R / radix).  The _shared_topology cache makes the
        # member constructor's own lookup a hit.
        topo = _shared_topology(
            configs[0].network, split_seed(configs[0].seed, 7)
        )
        rc = configs[0].router
        R = topo.num_routers
        self.routers_per_cell = R
        self.soa = SoAStore(
            len(configs) * R,
            topo.radix,
            max(rc.local_vcs, rc.global_vcs, 1),
            typed=backend.typed,
            cells=len(configs),
        )
        # Construct every member before any drain: the compiled backend
        # builds its per-queue kernel state lazily on first drain from
        # store.routers, which is only complete once all K cells have
        # appended their rows.
        self.sims = [
            Simulation(
                cfg,
                check_decomposition=check_decomposition,
                engine_backend=backend.name,
                engine_lower=engine_lower,
                soa=self.soa,
                soa_base=i * R,
            )
            for i, cfg in enumerate(configs)
        ]

    # ------------------------------------------------------------------
    def run(self) -> list[SimulationResult]:
        """Run all members to the shared horizon; one result per member.

        Uses the backend's fused ``drain_batch`` when available; a
        backend without one (e.g. a stale compiled extension) degrades to
        draining each member's calendar sequentially, which is
        bit-identical — the members share no events, so any interleaving
        that respects each calendar's own order yields the same results.
        """
        for sim in self.sims:
            sim.start()
        t_end = self.sims[0]._end_time
        eqs = [sim.engine for sim in self.sims]
        drain_batch = self.backend.drain_batch
        if drain_batch is not None and len(eqs) > 1:
            drain_batch(eqs, t_end)
        else:
            for eq in eqs:
                eq.run_until(t_end)
        return [sim._collect() for sim in self.sims]


def run_simulation_batch(
    configs: Sequence[SimulationConfig],
    *,
    engine_backend: str | None = None,
    engine_lower: str | None = None,
    check_decomposition: bool = False,
) -> list[SimulationResult]:
    """Build and run one batch (convenience wrapper, mirrors
    :func:`~repro.core.simulation.run_simulation`)."""
    return BatchSimulation(
        configs,
        engine_backend=engine_backend,
        engine_lower=engine_lower,
        check_decomposition=check_decomposition,
    ).run()
