"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch everything emitted by the simulator with a single ``except``
clause while still discriminating the failure class when needed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class ConfigurationError(ReproError, ValueError):
    """An invalid or inconsistent configuration value was supplied.

    Raised during :class:`repro.config.NetworkConfig` /
    :class:`repro.config.SimulationConfig` validation, e.g. a negative
    buffer size, a VC count too small for the selected routing mechanism,
    or a Dragonfly shape whose group graph is not complete.
    """


class TopologyError(ReproError, ValueError):
    """A topological query was malformed or unsatisfiable.

    Examples: asking for the gateway between a group and itself, an
    out-of-range router index, or a global-link arrangement that does not
    form a complete graph between groups.
    """


class RoutingError(ReproError, RuntimeError):
    """A routing mechanism produced an illegal decision.

    Examples: a VC index beyond the configured VC count for the port class,
    a third local hop inside one group, or a misroute requested after the
    packet already consumed its misrouting allowance.
    """


class SimulationError(ReproError, RuntimeError):
    """The simulation reached an inconsistent or stuck state.

    The deadlock watchdog raises this when no packet is delivered for an
    implausibly long window while packets remain in flight.
    """


class OracleError(SimulationError):
    """The simulation oracle detected a broken end-of-run invariant.

    Raised by :class:`repro.metrics.oracle.SimOracle` when packet
    conservation, credit balance, delivery-time monotonicity, or per-job
    accounting closure fails to hold after the network has drained.
    A subclass of :class:`SimulationError`: an oracle violation means the
    simulation itself is untrustworthy, not just its analysis.
    """


class FlowControlError(ReproError, RuntimeError):
    """A credit/buffer invariant was violated (overflow or negative count).

    These indicate internal bugs: the allocator must never grant a packet
    without sufficient downstream credit and buffer space.
    """


class AnalysisError(ReproError, ValueError):
    """Raised when experiment post-processing receives unusable inputs."""
