"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so callers
can catch everything emitted by the simulator with a single ``except``
clause while still discriminating the failure class when needed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class ConfigurationError(ReproError, ValueError):
    """An invalid or inconsistent configuration value was supplied.

    Raised during :class:`repro.config.NetworkConfig` /
    :class:`repro.config.SimulationConfig` validation, e.g. a negative
    buffer size, a VC count too small for the selected routing mechanism,
    or a Dragonfly shape whose group graph is not complete.
    """


class TopologyError(ReproError, ValueError):
    """A topological query was malformed or unsatisfiable.

    Examples: asking for the gateway between a group and itself, an
    out-of-range router index, or a global-link arrangement that does not
    form a complete graph between groups.
    """


class RoutingError(ReproError, RuntimeError):
    """A routing mechanism produced an illegal decision.

    Examples: a VC index beyond the configured VC count for the port class,
    a third local hop inside one group, or a misroute requested after the
    packet already consumed its misrouting allowance.
    """


class SimulationError(ReproError, RuntimeError):
    """The simulation reached an inconsistent or stuck state.

    The deadlock watchdog raises this when no packet is delivered for an
    implausibly long window while packets remain in flight.
    """


class OracleError(SimulationError):
    """The simulation oracle detected a broken end-of-run invariant.

    Raised by :class:`repro.metrics.oracle.SimOracle` when packet
    conservation, credit balance, delivery-time monotonicity, or per-job
    accounting closure fails to hold after the network has drained.
    A subclass of :class:`SimulationError`: an oracle violation means the
    simulation itself is untrustworthy, not just its analysis.
    """


class FlowControlError(ReproError, RuntimeError):
    """A credit/buffer invariant was violated (overflow or negative count).

    These indicate internal bugs: the allocator must never grant a packet
    without sufficient downstream credit and buffer space.
    """


class AnalysisError(ReproError, ValueError):
    """Raised when experiment post-processing receives unusable inputs."""


class ExecutionError(ReproError, RuntimeError):
    """A plan execution could not compute every required cell.

    Raised by consumers that need a complete :class:`~repro.exec.runner.
    PlanResult` (figure/table generators, the experiment shims) when the
    fault-tolerant runner exhausted its retries and quarantined cells.
    The structured per-cell records live in ``PlanResult.failures``.
    """


class LeaseError(ExecutionError):
    """A cell lease was lost or could not be maintained.

    Raised by :class:`repro.exec.leases.LeaseCoordinator` when a
    heartbeat discovers the lease file now carries another worker's
    token (the cell was reclaimed after our deadline expired, or stolen
    by an idle worker) or was removed (the cell completed elsewhere).
    """


class ServiceError(ReproError, RuntimeError):
    """The sweep service could not accept or finish a request.

    Raised by the :mod:`repro.service` client/daemon for operational
    failures that are not protocol violations: the daemon rejected a
    plan under backpressure (``busy``), a subscription referenced an
    evicted plan, or the connection died before ``plan_done``.
    """


class ProtocolError(ServiceError):
    """A malformed or illegal frame on the service wire protocol.

    Covers framing violations (oversized or truncated frames, bytes that
    are not a JSON object) and messages whose type or payload the
    receiving side cannot interpret.  A peer that triggers this is
    disconnected: framing errors leave the stream unsynchronized.
    """


class FaultInjection(ReproError, RuntimeError):
    """A deliberately injected fault from the ``REPRO_FAULTS`` harness.

    Never raised in production: only :class:`repro.exec.faults.
    FaultInjector` constructs it, so chaos tests can tell injected
    failures apart from real simulator bugs in failure records.
    """
