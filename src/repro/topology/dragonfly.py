"""The :class:`DragonflyTopology`: port maps, gateways and neighbours.

Port numbering convention (used consistently by routers, routing and
tests) for a router with ``p`` nodes, ``a-1`` local links and ``h`` global
links:

* ports ``0 .. p-1``                : node ports (injection in / ejection out)
* ports ``p .. p+a-2``              : local ports (to the other a-1 routers)
* ports ``p+a-1 .. p+a-1+h-1``      : global ports

Local port ``p + l`` of router ``i`` connects to router ``l`` if ``l < i``
else ``l + 1`` (the complete graph with self omitted).  Global port
``p + a - 1 + j`` follows the configured
:class:`repro.topology.arrangement.GlobalLinkArrangement`.
"""

from __future__ import annotations

from array import array
from functools import cached_property

from repro.config import NetworkConfig
from repro.errors import TopologyError
from repro.topology.arrangement import GlobalLinkArrangement, make_arrangement
from repro.topology.coordinates import NodeCoord, RouterCoord

__all__ = ["DragonflyTopology"]


class DragonflyTopology:
    """Structural queries over a canonical Dragonfly network.

    The constructor precomputes the gateway tables used by minimal routing
    (``gateway_router[g][g']`` and the corresponding port) so hot-path
    lookups are plain list indexing.

    Parameters
    ----------
    config:
        The network shape.  ``config.arrangement`` selects the global link
        arrangement; ``arrangement_seed`` only matters for ``"random"``.
    """

    def __init__(self, config: NetworkConfig, *, arrangement_seed: int = 0) -> None:
        self.config = config
        self.p = config.p
        self.a = config.a
        self.h = config.h
        self.groups = config.groups
        self.num_routers = config.num_routers
        self.num_nodes = config.num_nodes
        self.arrangement: GlobalLinkArrangement = make_arrangement(
            config.arrangement, self.a, self.h, seed=arrangement_seed
        )

        # Port layout boundaries.
        self.first_local_port = self.p
        self.first_global_port = self.p + self.a - 1
        self.radix = config.router_radix

        # gateway tables: for each (group-offset delta != 0):
        #   gw_router[delta]  : router-in-group owning the link to g+delta
        #   gw_port[delta]    : its global port index (absolute port number)
        #   landing_router[delta]: router-in-group on the remote side
        G = self.groups
        self._gw_router = [0] * G
        self._gw_port = [0] * G
        self._landing_router = [0] * G
        for delta in range(1, G):
            i, j = self.arrangement.slot_for_offset(delta)
            self._gw_router[delta] = i
            self._gw_port[delta] = self.first_global_port + j
            ri, _rj = self.arrangement.peer_slot(delta)
            self._landing_router[delta] = ri
        # Public hot-path aliases (shared list refs): gateway() without the
        # bounds checks, indexed by (dst_group - group) % groups.
        self.gw_router_by_delta = self._gw_router
        self.gw_port_by_delta = self._gw_port

        # per-router global port -> (peer_group_offset, peer_router, peer_port)
        # indexed by router-in-group i and port j.
        self._global_peer = [[(0, 0, 0)] * self.h for _ in range(self.a)]
        for i in range(self.a):
            for j in range(self.h):
                off = self.arrangement.offset(i, j)
                pi, pj = self.arrangement.peer_slot(off)
                self._global_peer[i][j] = (
                    off,
                    pi,
                    self.first_global_port + pj,
                )

        # Hot-path view of the same data: global_out[i] lists, in port
        # order, the (absolute port, peer-group offset) of router i's
        # global links — candidate generation indexes this directly
        # instead of going through the checked accessor methods.
        self.global_out: list[list[tuple[int, int]]] = [
            [
                (self.first_global_port + j, self._global_peer[i][j][0])
                for j in range(self.h)
            ]
            for i in range(self.a)
        ]

    # ------------------------------------------------------------------
    # id conversions
    # ------------------------------------------------------------------
    def router_coord(self, router_id: int) -> RouterCoord:
        """Flat router id -> (group, router-in-group)."""
        self._check_router(router_id)
        return RouterCoord.from_flat(router_id, self.a)

    def router_id(self, group: int, router: int) -> int:
        """(group, router-in-group) -> flat router id."""
        if not (0 <= group < self.groups and 0 <= router < self.a):
            raise TopologyError(f"router ({group},{router}) out of range")
        return group * self.a + router

    def node_coord(self, node_id: int) -> NodeCoord:
        """Flat node id -> (group, router, node-on-router)."""
        if not (0 <= node_id < self.num_nodes):
            raise TopologyError(f"node {node_id} out of range")
        return NodeCoord.from_flat(node_id, self.a, self.p)

    def node_router(self, node_id: int) -> int:
        """Flat router id hosting *node_id*."""
        if not (0 <= node_id < self.num_nodes):
            raise TopologyError(f"node {node_id} out of range")
        return node_id // self.p

    def group_of_router(self, router_id: int) -> int:
        """Group index of a flat router id."""
        self._check_router(router_id)
        return router_id // self.a

    def group_of_node(self, node_id: int) -> int:
        """Group index of a flat node id."""
        return self.node_router(node_id) // self.a

    def nodes_of_group(self, group: int) -> range:
        """Flat node ids belonging to *group*."""
        if not (0 <= group < self.groups):
            raise TopologyError(f"group {group} out of range")
        per = self.a * self.p
        return range(group * per, (group + 1) * per)

    def routers_of_group(self, group: int) -> range:
        """Flat router ids belonging to *group*."""
        if not (0 <= group < self.groups):
            raise TopologyError(f"group {group} out of range")
        return range(group * self.a, (group + 1) * self.a)

    # ------------------------------------------------------------------
    # port queries
    # ------------------------------------------------------------------
    def is_node_port(self, port: int) -> bool:
        """True for injection/ejection ports."""
        return 0 <= port < self.p

    def is_local_port(self, port: int) -> bool:
        """True for intra-group ports."""
        return self.first_local_port <= port < self.first_global_port

    def is_global_port(self, port: int) -> bool:
        """True for inter-group ports."""
        return self.first_global_port <= port < self.radix

    def local_port(self, i: int, target: int) -> int:
        """Port on router-in-group *i* towards router-in-group *target*."""
        if i == target:
            raise TopologyError("no local port to self")
        if not (0 <= i < self.a and 0 <= target < self.a):
            raise TopologyError(f"router index out of range: {i}, {target}")
        slot = target if target < i else target - 1
        return self.first_local_port + slot

    def local_port_target(self, i: int, port: int) -> int:
        """Router-in-group reached from router *i* through local *port*."""
        if not self.is_local_port(port):
            raise TopologyError(f"port {port} is not a local port")
        slot = port - self.first_local_port
        return slot if slot < i else slot + 1

    def global_port_peer(self, group: int, i: int, port: int) -> tuple[int, int, int]:
        """(peer_group, peer_router_in_group, peer_port) over global *port*."""
        if not self.is_global_port(port):
            raise TopologyError(f"port {port} is not a global port")
        j = port - self.first_global_port
        off, pi, pport = self._global_peer[i][j]
        return ((group + off) % self.groups, pi, pport)

    def global_neighbor_groups(self, i: int) -> list[int]:
        """Group *offsets* reachable directly from router-in-group *i*.

        Returns the ``h`` offsets (in port order) such that router *i* of
        any group ``g`` has a global link to ``g + offset``.
        """
        if not (0 <= i < self.a):
            raise TopologyError(f"router index {i} out of range")
        return [self._global_peer[i][j][0] for j in range(self.h)]

    # ------------------------------------------------------------------
    # gateways (minimal inter-group routing)
    # ------------------------------------------------------------------
    def gateway(self, group: int, dst_group: int) -> tuple[int, int]:
        """(router-in-group, global port) of *group*'s link to *dst_group*.

        Minimal routing from any router of *group* towards *dst_group* must
        reach this router and leave through this port.
        """
        delta = (dst_group - group) % self.groups
        if delta == 0:
            raise TopologyError("gateway to own group is undefined")
        return self._gw_router[delta], self._gw_port[delta]

    def landing_router(self, group: int, dst_group: int) -> int:
        """Router-in-group of *dst_group* where the link from *group* lands."""
        delta = (dst_group - group) % self.groups
        if delta == 0:
            raise TopologyError("landing router in own group is undefined")
        return self._landing_router[delta]

    def bottleneck_router(self, group: int, offsets: list[int] | None = None) -> int:
        """Router-in-group carrying the links to groups ``g+1 .. g+h``.

        With *offsets* given, returns the router owning the link for the
        first offset and raises :class:`TopologyError` unless a single
        router owns them all — the defining property of an ADVc-style
        pattern (Section III, footnote 1).
        """
        offs = offsets if offsets is not None else list(range(1, self.h + 1))
        owners = {self._gw_router[o % self.groups] for o in offs}
        if len(owners) != 1:
            raise TopologyError(
                f"offsets {offs} are not owned by a single router "
                f"(owners: {sorted(owners)}); not an ADVc bottleneck set"
            )
        return owners.pop()

    def advc_offsets(self, bottleneck: int | None = None) -> list[int]:
        """Group offsets whose links share one router (ADVc destination set).

        With the palmtree arrangement and ``bottleneck=None`` this returns
        ``[1, 2, ..., h]`` (the paper's consecutive groups).  For other
        arrangements, pass the router whose h offsets you want.
        """
        if bottleneck is None:
            if self.config.arrangement == "palmtree":
                return list(range(1, self.h + 1))
            raise TopologyError(
                "consecutive offsets are only a bottleneck set under the "
                "palmtree arrangement; pass bottleneck= for others"
            )
        return self.global_neighbor_groups(bottleneck)

    # ------------------------------------------------------------------
    def min_service_table(self, c_local: int, c_global: int, c_eject: int) -> array:
        """Dense R x R table of minimal-path base latencies (phit cost).

        ``table[src_router * R + dst_router]`` is the zero-load latency
        lower bound of a packet between the two routers under minimal
        routing with the given per-hop costs (local hop, global hop,
        ejection) — the same quantity :meth:`Simulation._min_service`
        historically memoised pairwise in a dict.  Built once per
        (cost-triple, topology) and memoised on the instance, so every
        cell warm-started from the shared ``_TOPO_CACHE`` entry reuses
        one table; the engine's lowered generator indexes it directly.
        """
        key = (c_local, c_global, c_eject)
        cache = getattr(self, "_ms_tables", None)
        if cache is None:
            cache = self._ms_tables = {}
        table = cache.get(key)
        if table is not None:
            return table
        R = self.num_routers
        a = self.a
        table = array("q", bytes(8 * R * R))
        for src in range(R):
            sg, si = src // a, src % a
            for dst in range(R):
                tg, ti = dst // a, dst % a
                cost = c_eject
                g, i = sg, si
                if g != tg:
                    gw_pos, _port = self.gateway(g, tg)
                    if i != gw_pos:
                        cost += c_local
                    cost += c_global
                    i = self.landing_router(g, tg)
                    g = tg
                if i != ti:
                    cost += c_local
                table[src * R + dst] = cost
        cache[key] = table
        return table

    # ------------------------------------------------------------------
    @cached_property
    def port_kind(self) -> list[str]:
        """Port class per absolute port index: 'node' / 'local' / 'global'."""
        kinds = []
        for port in range(self.radix):
            if self.is_node_port(port):
                kinds.append("node")
            elif self.is_local_port(port):
                kinds.append("local")
            else:
                kinds.append("global")
        return kinds

    def link_latency(self, port: int) -> int:
        """Propagation latency (cycles) of the link behind *port*."""
        kind = self.port_kind[port]
        if kind == "node":
            return self.config.node_link_latency
        if kind == "local":
            return self.config.local_link_latency
        return self.config.global_link_latency

    def describe(self) -> str:
        """Readable one-liner (delegates to the config)."""
        return self.config.describe()

    def _check_router(self, router_id: int) -> None:
        if not (0 <= router_id < self.num_routers):
            raise TopologyError(f"router {router_id} out of range")
