"""Path computation over a :class:`repro.topology.DragonflyTopology`.

These functions are used by tests and by the analytic latency model (base
latency and misrouting penalty of Figure 3), *not* by the cycle-by-cycle
router logic (which takes one hop at a time).  They return explicit hop
lists so properties like "minimal paths are at most l-g-l" are directly
checkable.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.errors import TopologyError
from repro.topology.dragonfly import DragonflyTopology

__all__ = ["Hop", "minimal_path", "minimal_path_length", "valiant_path"]


class Hop(NamedTuple):
    """One link traversal: source router, exit port, and link kind."""

    router_id: int
    port: int
    kind: str  # 'local' | 'global' | 'node' (final ejection hop)


def minimal_path(topo: DragonflyTopology, src_node: int, dst_node: int) -> list[Hop]:
    """Hop list of the unique minimal path between two nodes.

    Includes the final ejection hop to the destination node, so the length
    is (router-to-router hops) + 1.  Raises for ``src == dst``.
    """
    if src_node == dst_node:
        raise TopologyError("no path from a node to itself")
    src = topo.node_coord(src_node)
    dst = topo.node_coord(dst_node)
    hops: list[Hop] = []
    g, i = src.group, src.router

    if g != dst.group:
        gw_router, gw_port = topo.gateway(g, dst.group)
        if i != gw_router:
            hops.append(
                Hop(topo.router_id(g, i), topo.local_port(i, gw_router), "local")
            )
            i = gw_router
        hops.append(Hop(topo.router_id(g, i), gw_port, "global"))
        g, i = dst.group, topo.landing_router(src.group, dst.group)

    if i != dst.router:
        hops.append(Hop(topo.router_id(g, i), topo.local_port(i, dst.router), "local"))
        i = dst.router
    hops.append(Hop(topo.router_id(g, i), dst.node, "node"))
    return hops


def minimal_path_length(topo: DragonflyTopology, src_node: int, dst_node: int) -> int:
    """Number of router-to-router hops on the minimal path (0..3)."""
    return len(minimal_path(topo, src_node, dst_node)) - 1


def valiant_path(
    topo: DragonflyTopology,
    src_node: int,
    dst_node: int,
    intermediate_router: int,
) -> list[Hop]:
    """Hop list of a Valiant path through *intermediate_router*.

    The path routes minimally from the source router to the intermediate
    router, then minimally to the destination node.  When the intermediate
    router coincides with a router already on the minimal path the
    composition simply degenerates (no artificial loops are added).
    """
    if src_node == dst_node:
        raise TopologyError("no path from a node to itself")
    src = topo.node_coord(src_node)
    dst = topo.node_coord(dst_node)
    inter = topo.router_coord(intermediate_router)
    hops: list[Hop] = []

    # Leg 1: source router -> intermediate router (router-level minimal).
    g, i = src.group, src.router
    if g != inter.group:
        gw_router, gw_port = topo.gateway(g, inter.group)
        if i != gw_router:
            hops.append(
                Hop(topo.router_id(g, i), topo.local_port(i, gw_router), "local")
            )
            i = gw_router
        hops.append(Hop(topo.router_id(g, i), gw_port, "global"))
        i = topo.landing_router(g, inter.group)
        g = inter.group
    if i != inter.router:
        hops.append(
            Hop(topo.router_id(g, i), topo.local_port(i, inter.router), "local")
        )
        i = inter.router

    # Leg 2: intermediate router -> destination node.
    if g != dst.group:
        gw_router, gw_port = topo.gateway(g, dst.group)
        if i != gw_router:
            hops.append(
                Hop(topo.router_id(g, i), topo.local_port(i, gw_router), "local")
            )
            i = gw_router
        hops.append(Hop(topo.router_id(g, i), gw_port, "global"))
        i = topo.landing_router(g, dst.group)
        g = dst.group
    if i != dst.router:
        hops.append(Hop(topo.router_id(g, i), topo.local_port(i, dst.router), "local"))
        i = dst.router
    hops.append(Hop(topo.router_id(g, i), dst.node, "node"))
    return hops
