"""Global link arrangements for canonical Dragonfly networks.

An *arrangement* decides which remote group each (router, global-port) pair
connects to.  In a canonical Dragonfly there are ``G = a*h + 1`` groups and
every unordered pair of groups is joined by exactly one global link, so an
arrangement is a bijection between the ``a*h`` (router, port) slots of a
group and the ``a*h`` other groups, applied uniformly (shift-invariantly in
the group index) so that the network is vertex-transitive at group level.

The paper uses the **palmtree** arrangement (Camarero et al., TACO 2014),
under which the global links towards the next ``h`` consecutive groups
``g+1 .. g+h`` all attach to the *last* router of group ``g`` — the
bottleneck router of the ADVc pattern (paper Fig. 1, router R11 at a=12).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from repro.errors import TopologyError

__all__ = [
    "GlobalLinkArrangement",
    "PalmtreeArrangement",
    "ConsecutiveArrangement",
    "RandomArrangement",
    "make_arrangement",
]


class GlobalLinkArrangement(ABC):
    """Maps (router-in-group, global-port) slots to group offsets.

    The mapping is expressed in terms of *offsets*: slot ``(i, j)`` of any
    group ``g`` connects to group ``(g + offset(i, j)) mod G``.  Because the
    same offset table is used in every group, the resulting group graph is
    a circulant complete graph and each unordered pair of groups gets
    exactly one link (validated at construction).
    """

    def __init__(self, a: int, h: int) -> None:
        if a < 1 or h < 1:
            raise TopologyError(f"arrangement needs a,h >= 1, got a={a}, h={h}")
        self.a = a
        self.h = h
        self.groups = a * h + 1
        # offset table and its inverse (offset -> slot)
        self._offset = [[0] * h for _ in range(a)]
        for i in range(a):
            for j in range(h):
                off = self._compute_offset(i, j)
                self._offset[i][j] = off % self.groups
        self._slot_of_offset: dict[int, tuple[int, int]] = {}
        for i in range(a):
            for j in range(h):
                off = self._offset[i][j]
                if off == 0:
                    raise TopologyError(
                        f"slot ({i},{j}) maps to its own group (offset 0)"
                    )
                if off in self._slot_of_offset:
                    raise TopologyError(
                        f"offset {off} produced by two slots: "
                        f"{self._slot_of_offset[off]} and ({i},{j})"
                    )
                self._slot_of_offset[off] = (i, j)
        if len(self._slot_of_offset) != a * h:
            raise TopologyError(
                "arrangement does not cover all non-zero offsets: the group "
                "graph would not be complete"
            )

    @abstractmethod
    def _compute_offset(self, i: int, j: int) -> int:
        """Raw (possibly negative) group offset for slot ``(i, j)``."""

    # -- queries -------------------------------------------------------------
    def offset(self, i: int, j: int) -> int:
        """Normalised offset in ``[1, G-1]`` for slot ``(i, j)``."""
        return self._offset[i][j]

    def peer_group(self, g: int, i: int, j: int) -> int:
        """Group reached from group *g* through slot ``(i, j)``."""
        return (g + self._offset[i][j]) % self.groups

    def slot_for_offset(self, off: int) -> tuple[int, int]:
        """Inverse lookup: which (router, port) slot realises *off*.

        *off* is taken modulo G and must be non-zero.
        """
        off %= self.groups
        if off == 0:
            raise TopologyError("offset 0 is the group itself; no global link")
        return self._slot_of_offset[off]

    def peer_slot(self, off: int) -> tuple[int, int]:
        """Slot on the *remote* side of the link with offset *off*.

        The link realising offset ``off`` from group ``g`` is, seen from the
        peer group ``g+off``, the link with offset ``G - off``.
        """
        return self.slot_for_offset(self.groups - (off % self.groups))

    def describe(self) -> str:
        """Readable name (used in reports)."""
        return type(self).__name__


class PalmtreeArrangement(GlobalLinkArrangement):
    """The paper's arrangement: slot ``(i, j)`` -> offset ``-(i*h + j + 1)``.

    Consequences used throughout the paper:

    * the link towards group ``g+delta`` (delta = 1..h) leaves group ``g``
      from router ``a-1`` (ports ``h-1 .. 0``) — the ADVc bottleneck;
    * that link lands on router ``0`` of the destination group — the router
      the paper observes receiving the minimally-routed traffic (R0).
    """

    def _compute_offset(self, i: int, j: int) -> int:
        return -(i * self.h + j + 1)


class ConsecutiveArrangement(GlobalLinkArrangement):
    """Mirror image of palmtree: slot ``(i, j)`` -> offset ``+(i*h + j + 1)``.

    Under this arrangement the ADVc-equivalent pattern (Section III,
    footnote 1) targets the *preceding* h groups; the bottleneck router is
    router ``a-1`` for destinations ``g-1..g-h``.
    """

    def _compute_offset(self, i: int, j: int) -> int:
        return i * self.h + j + 1


class RandomArrangement(GlobalLinkArrangement):
    """A random (but shift-invariant and seed-reproducible) slot permutation.

    Used by the ablation benchmarks to show that an ADVc-equivalent pattern
    exists for *any* arrangement (pick the h groups wired to one router).
    """

    def __init__(self, a: int, h: int, seed: int = 0) -> None:
        rng = random.Random(seed)
        offsets = list(range(1, a * h + 1))
        rng.shuffle(offsets)
        self._table = offsets
        super().__init__(a, h)

    def _compute_offset(self, i: int, j: int) -> int:
        return self._table[i * self.h + j]


def make_arrangement(
    name: str, a: int, h: int, *, seed: int = 0
) -> GlobalLinkArrangement:
    """Factory keyed by :class:`repro.config.NetworkConfig.arrangement`."""
    if name == "palmtree":
        return PalmtreeArrangement(a, h)
    if name == "consecutive":
        return ConsecutiveArrangement(a, h)
    if name == "random":
        return RandomArrangement(a, h, seed=seed)
    raise TopologyError(f"unknown arrangement {name!r}")
