"""Coordinate conversions between flat ids and (group, router, node) tuples.

The simulator uses flat integer ids in hot paths (router id ``r = g*a + i``,
node id ``n = r*p + k``); these helpers give the named-tuple views used by
tests, analysis and error messages.
"""

from __future__ import annotations

from typing import NamedTuple

__all__ = ["RouterCoord", "NodeCoord"]


class RouterCoord(NamedTuple):
    """Position of a router: group index and local router index in-group."""

    group: int
    router: int

    def flat(self, a: int) -> int:
        """Flat router id for a Dragonfly with *a* routers per group."""
        return self.group * a + self.router

    @classmethod
    def from_flat(cls, router_id: int, a: int) -> "RouterCoord":
        """Inverse of :meth:`flat`."""
        return cls(router_id // a, router_id % a)


class NodeCoord(NamedTuple):
    """Position of a computing node: group, router-in-group, node-on-router."""

    group: int
    router: int
    node: int

    def flat(self, a: int, p: int) -> int:
        """Flat node id for a Dragonfly with *a* routers/group, *p* nodes/router."""
        return (self.group * a + self.router) * p + self.node

    @classmethod
    def from_flat(cls, node_id: int, a: int, p: int) -> "NodeCoord":
        """Inverse of :meth:`flat`."""
        router_id, node = divmod(node_id, p)
        group, router = divmod(router_id, a)
        return cls(group, router, node)
