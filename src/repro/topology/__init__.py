"""Canonical Dragonfly topology: arrangements, gateway tables, paths, graphs.

The topology layer is pure and stateless: given ``(p, a, h)`` and a global
link arrangement it answers structural queries (which port reaches which
group, who is the gateway router, what is the minimal path) used by both
the routers and the routing mechanisms.
"""

from repro.topology.arrangement import (
    ConsecutiveArrangement,
    GlobalLinkArrangement,
    PalmtreeArrangement,
    RandomArrangement,
    make_arrangement,
)
from repro.topology.coordinates import NodeCoord, RouterCoord
from repro.topology.dragonfly import DragonflyTopology
from repro.topology.graphs import (
    router_graph,
    group_graph,
    topology_diameter,
)
from repro.topology.paths import (
    Hop,
    minimal_path,
    minimal_path_length,
    valiant_path,
)

__all__ = [
    "ConsecutiveArrangement",
    "DragonflyTopology",
    "GlobalLinkArrangement",
    "Hop",
    "NodeCoord",
    "PalmtreeArrangement",
    "RandomArrangement",
    "RouterCoord",
    "group_graph",
    "make_arrangement",
    "minimal_path",
    "minimal_path_length",
    "router_graph",
    "topology_diameter",
    "valiant_path",
]
