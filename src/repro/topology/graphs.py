"""NetworkX views of the Dragonfly and structural sanity analyses.

Used by tests (diameter, regularity, completeness checks) and available to
library users who want to run graph algorithms over the topology.
"""

from __future__ import annotations

import networkx as nx

from repro.topology.dragonfly import DragonflyTopology

__all__ = ["router_graph", "group_graph", "topology_diameter"]


def router_graph(topo: DragonflyTopology) -> nx.Graph:
    """Undirected router-level graph with edge attribute ``kind``.

    Nodes are flat router ids; edges are local (intra-group) and global
    (inter-group) links.  Node ports are not represented.
    """
    g = nx.Graph()
    g.add_nodes_from(range(topo.num_routers))
    for router_id in range(topo.num_routers):
        grp, i = divmod(router_id, topo.a)
        # local complete graph (add each edge once)
        for other in range(i + 1, topo.a):
            g.add_edge(router_id, topo.router_id(grp, other), kind="local")
        # global links (add each edge once: only when peer id is larger)
        for port in range(topo.first_global_port, topo.radix):
            pg, pi, _pp = topo.global_port_peer(grp, i, port)
            peer = topo.router_id(pg, pi)
            if peer > router_id:
                g.add_edge(router_id, peer, kind="global")
    return g


def group_graph(topo: DragonflyTopology) -> nx.Graph:
    """Group-level graph (must be the complete graph K_G)."""
    g = nx.Graph()
    g.add_nodes_from(range(topo.groups))
    for grp in range(topo.groups):
        for i in range(topo.a):
            for port in range(topo.first_global_port, topo.radix):
                pg, _pi, _pp = topo.global_port_peer(grp, i, port)
                g.add_edge(grp, pg)
    return g


def topology_diameter(topo: DragonflyTopology) -> int:
    """Router-graph diameter (3 for any canonical Dragonfly with a >= 2)."""
    return nx.diameter(router_graph(topo))
