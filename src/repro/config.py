"""Configuration dataclasses for the Dragonfly simulator.

Everything the paper's Table I parameterises lives here:

* :class:`NetworkConfig`   - topology shape (p, a, h) and arrangement.
* :class:`RouterConfig`    - buffering, VCs, pipeline, allocator priority.
* :class:`TrafficConfig`   - pattern, offered load, packet size.
* :class:`SimulationConfig`- the full bundle plus timing windows and seed.

Presets
-------
:func:`paper_config` builds the paper's h=6 / 5,256-node system;
:func:`small_config` builds the h=2 / 72-node system of the paper's Fig. 1
(the default for tests and benchmarks — see DESIGN.md for the scaling
substitution rationale); :func:`tiny_config` is an h=1 / 6-node system for
fast unit tests.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError

__all__ = [
    "BASE_PATTERN_CHOICES",
    "JobSpec",
    "resolve_job_groups",
    "NetworkConfig",
    "PATTERN_CHOICES",
    "RouterConfig",
    "TrafficConfig",
    "SimulationConfig",
    "paper_config",
    "small_config",
    "medium_config",
    "tiny_config",
]

#: static single-phase patterns (legal inside ``phase_patterns``).
BASE_PATTERN_CHOICES = (
    "uniform",
    "adversarial",
    "advc",
    "permutation",
    "hotspot",
    "job",
)

#: valid ``TrafficConfig.pattern`` values (public: CLI choices etc.).
#: ``phased`` switches between base patterns every ``phase_length`` cycles;
#: ``multi_job`` places the ``jobs`` specs on disjoint group ranges.
PATTERN_CHOICES = BASE_PATTERN_CHOICES + (
    "phased",
    "multi_job",
)


@dataclass(frozen=True)
class JobSpec:
    """One job of a ``multi_job`` workload (see traffic.scenarios).

    Attributes
    ----------
    first_group:
        First group of the job's consecutive (wrapping) group range.
    groups:
        Number of consecutive groups the job occupies.
    pattern:
        Communication inside the job: ``"uniform"`` (uniform over the
        job's nodes) or ``"adversarial"`` (group ``k`` of the job sends
        to group ``k+1`` of the job, ADV-style).
    load_scale:
        Per-job thinning factor in ``(0, 1]`` applied on top of the
        global offered load (1.0 = full load).
    start_cycle:
        The job is idle before this cycle (staggered start).
    """

    first_group: int = 0
    groups: int = 2
    pattern: str = "uniform"
    load_scale: float = 1.0
    start_cycle: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.first_group, int) or self.first_group < 0:
            raise ConfigurationError(
                f"job first_group must be an int >= 0, got {self.first_group!r}"
            )
        if not isinstance(self.groups, int) or self.groups < 1:
            raise ConfigurationError(
                f"job groups must be an int >= 1, got {self.groups!r}"
            )
        if self.pattern not in ("uniform", "adversarial"):
            raise ConfigurationError(
                f"job pattern must be 'uniform' or 'adversarial', "
                f"got {self.pattern!r}"
            )
        if self.pattern == "adversarial" and self.groups < 2:
            raise ConfigurationError("an adversarial job needs at least 2 groups")
        if not (0.0 < self.load_scale <= 1.0):
            raise ConfigurationError(
                f"job load_scale must be in (0, 1], got {self.load_scale}"
            )
        if not isinstance(self.start_cycle, int) or self.start_cycle < 0:
            raise ConfigurationError(
                f"job start_cycle must be an int >= 0, got {self.start_cycle!r}"
            )


def resolve_job_groups(
    jobs: Sequence[JobSpec], total_groups: int, nodes_per_group: int
) -> list[list[int]]:
    """Resolve and validate multi-job placement on a network shape.

    Returns one (wrapped) group-id list per job; raises
    :class:`repro.errors.ConfigurationError` when a job does not fit,
    is too small to communicate, or overlaps another job.  Shared by
    config cross-validation (which knows the shape but not the
    topology) and :class:`repro.traffic.scenarios.MultiJobTraffic`.
    """
    claimed: dict[int, int] = {}
    resolved: list[list[int]] = []
    for idx, job in enumerate(jobs):
        if job.groups > total_groups:
            raise ConfigurationError(
                f"job {idx} spans {job.groups} groups but the network "
                f"has only {total_groups}"
            )
        if job.groups * nodes_per_group < 2:
            raise ConfigurationError(
                f"job {idx} has fewer than 2 nodes; it cannot communicate"
            )
        groups = [(job.first_group + k) % total_groups for k in range(job.groups)]
        for g in groups:
            if g in claimed:
                raise ConfigurationError(
                    f"jobs {claimed[g]} and {idx} both claim group {g}; "
                    "multi_job jobs must occupy disjoint group ranges"
                )
            claimed[g] = idx
        resolved.append(groups)
    return resolved


@dataclass(frozen=True)
class NetworkConfig:
    """Shape of a canonical Dragonfly network.

    Attributes
    ----------
    p:
        Computing nodes attached to every router.
    a:
        Routers per group (groups are complete local graphs).
    h:
        Global links per router.  A *balanced* Dragonfly has
        ``a = 2h, p = h``; the constructor accepts any positive values but
        requires the canonical complete inter-group graph
        ``groups = a*h + 1``.
    arrangement:
        Global link arrangement name: ``"palmtree"`` (paper default),
        ``"consecutive"`` or ``"random"``.
    local_link_latency / global_link_latency / node_link_latency:
        One-way propagation latency of each link class, in router cycles
        (Table I: 10 local, 100 global; node links are modelled as 1).
    """

    p: int = 2
    a: int = 4
    h: int = 2
    arrangement: str = "palmtree"
    local_link_latency: int = 10
    global_link_latency: int = 100
    node_link_latency: int = 1

    def __post_init__(self) -> None:
        for name in ("p", "a", "h"):
            v = getattr(self, name)
            if not isinstance(v, int) or v < 1:
                raise ConfigurationError(f"{name} must be a positive int, got {v!r}")
        for name in (
            "local_link_latency",
            "global_link_latency",
            "node_link_latency",
        ):
            v = getattr(self, name)
            if not isinstance(v, int) or v < 1:
                raise ConfigurationError(
                    f"{name} must be a positive int number of cycles, got {v!r}"
                )
        if self.arrangement not in ("palmtree", "consecutive", "random"):
            raise ConfigurationError(
                f"unknown arrangement {self.arrangement!r}; "
                "expected 'palmtree', 'consecutive' or 'random'"
            )

    # -- derived quantities -------------------------------------------------
    @property
    def groups(self) -> int:
        """Number of groups in the canonical (complete-graph) Dragonfly."""
        return self.a * self.h + 1

    @property
    def routers_per_group(self) -> int:
        """Alias of ``a`` for readability at call sites."""
        return self.a

    @property
    def num_routers(self) -> int:
        """Total routers in the system (``groups * a``)."""
        return self.groups * self.a

    @property
    def num_nodes(self) -> int:
        """Total computing nodes (``groups * a * p``)."""
        return self.num_routers * self.p

    @property
    def local_ports(self) -> int:
        """Local ports per router (``a - 1``, complete group graph)."""
        return self.a - 1

    @property
    def router_radix(self) -> int:
        """Total router ports: p injection + (a-1) local + h global."""
        return self.p + self.a - 1 + self.h

    def describe(self) -> str:
        """One-line human-readable summary of the network shape."""
        return (
            f"Dragonfly(p={self.p}, a={self.a}, h={self.h}): "
            f"{self.groups} groups, {self.num_routers} routers, "
            f"{self.num_nodes} nodes, {self.arrangement} arrangement"
        )


@dataclass(frozen=True)
class RouterConfig:
    """Router microarchitecture parameters (paper Table I).

    Attributes
    ----------
    pipeline_latency:
        Cycles from switch-allocation grant to arrival in the output
        buffer (Table I: 5).
    speedup:
        Internal crossbar frequency multiplier.  With ``speedup = 2`` the
        switch moves 2 phits/cycle, so an 8-phit packet occupies an input
        or output of the crossbar for 4 cycles while the external link
        needs 8.
    local_input_buffer / global_input_buffer:
        Input buffer capacity per virtual channel, in phits (32 / 256).
    output_buffer:
        Output FIFO capacity per port, in phits (32).
    local_vcs / global_vcs:
        Virtual channels per local and global port.  4 local VCs cover the
        longest Valiant-to-node path and our escape-VC scheme (DESIGN.md
        Section 4 documents the deviation from Table I's 3-VC OLM reuse).
    transit_priority:
        When True the allocator strictly prefers in-transit candidates over
        new injections (the Blue Gene-style priority the paper evaluates in
        Figures 2-4 / Table II, and removes in Figures 5-6 / Table III).
    """

    pipeline_latency: int = 5
    speedup: int = 2
    local_input_buffer: int = 32
    global_input_buffer: int = 256
    output_buffer: int = 32
    local_vcs: int = 4
    global_vcs: int = 2
    transit_priority: bool = True

    def __post_init__(self) -> None:
        for name in (
            "pipeline_latency",
            "speedup",
            "local_input_buffer",
            "global_input_buffer",
            "output_buffer",
            "local_vcs",
            "global_vcs",
        ):
            v = getattr(self, name)
            if not isinstance(v, int) or v < 1:
                raise ConfigurationError(f"{name} must be a positive int, got {v!r}")
        if self.global_vcs < 2:
            raise ConfigurationError(
                "global_vcs must be >= 2: non-minimal paths traverse two "
                "global hops and the deadlock-avoidance scheme assigns them "
                "ascending VCs"
            )
        if self.local_vcs < 4:
            raise ConfigurationError(
                "local_vcs must be >= 4: Valiant-to-node paths take up to 4 "
                "local hops and the escape scheme reserves the last VC"
            )


@dataclass(frozen=True)
class TrafficConfig:
    """Traffic workload description.

    Attributes
    ----------
    pattern:
        ``"uniform"`` (UN), ``"adversarial"`` (ADV+k), ``"advc"``
        (adversarial consecutive), ``"permutation"``, ``"hotspot"`` or
        ``"job"`` (consecutive job placement, the scenario that motivates
        ADVc in Section III).
    load:
        Offered load in phits/(node*cycle), in ``(0, 1]``.
    packet_size:
        Packet length in phits (Table I: 8).
    adv_offset:
        Destination-group offset for ADV+k (default +1).
    job_groups:
        Number of consecutive groups a ``"job"`` workload spans
        (default ``h + 1``, the paper's motivating case).
    hotspot_fraction:
        For ``"hotspot"``: fraction of traffic aimed at the hot node.
    burst_on / burst_off:
        On/off bursty injection: nodes generate for ``burst_on`` cycles,
        stay silent for ``burst_off`` cycles, repeating.  Both zero (the
        default) disables bursting; otherwise both must be positive.
        Applies on top of any pattern.
    ramp_cycles:
        Ramped load: the effective injection probability rises linearly
        from 0 to the configured ``load`` over the first ``ramp_cycles``
        cycles (0 disables).  Applies on top of any pattern.
    phase_patterns / phase_length:
        For ``"phased"``: the base patterns cycled through, switching
        every ``phase_length`` cycles.
    jobs:
        For ``"multi_job"``: one :class:`JobSpec` per job; jobs must
        occupy disjoint group ranges.
    """

    pattern: str = "uniform"
    load: float = 0.5
    packet_size: int = 8
    adv_offset: int = 1
    job_groups: int | None = None
    hotspot_fraction: float = 0.2
    burst_on: int = 0
    burst_off: int = 0
    ramp_cycles: int = 0
    phase_patterns: tuple[str, ...] = ()
    phase_length: int = 0
    jobs: tuple[JobSpec, ...] = ()

    _PATTERNS = PATTERN_CHOICES

    def __post_init__(self) -> None:
        if self.pattern not in self._PATTERNS:
            raise ConfigurationError(
                f"unknown traffic pattern {self.pattern!r}; "
                f"expected one of {self._PATTERNS}"
            )
        if not (0.0 < self.load <= 1.0):
            raise ConfigurationError(
                f"load must be in (0, 1] phits/(node*cycle), got {self.load}"
            )
        if not isinstance(self.packet_size, int) or self.packet_size < 1:
            raise ConfigurationError(
                f"packet_size must be a positive int, got {self.packet_size!r}"
            )
        if self.adv_offset == 0:
            raise ConfigurationError("adv_offset must be nonzero")
        if not (0.0 < self.hotspot_fraction <= 1.0):
            raise ConfigurationError(
                f"hotspot_fraction must be in (0, 1], got {self.hotspot_fraction}"
            )
        if self.job_groups is not None and self.job_groups < 2:
            raise ConfigurationError("job_groups must be >= 2 (or None)")
        self._validate_scenario_fields()

    def _validate_scenario_fields(self) -> None:
        # Normalise sequences (JSON round-trips deliver lists of dicts).
        object.__setattr__(self, "phase_patterns", tuple(self.phase_patterns))
        object.__setattr__(
            self,
            "jobs",
            tuple(j if isinstance(j, JobSpec) else JobSpec(**j) for j in self.jobs),
        )
        for name in ("burst_on", "burst_off", "ramp_cycles"):
            v = getattr(self, name)
            if not isinstance(v, int) or v < 0:
                raise ConfigurationError(f"{name} must be an int >= 0, got {v!r}")
        if (self.burst_on > 0) != (self.burst_off > 0):
            raise ConfigurationError(
                "burst_on and burst_off must both be zero (no bursting) "
                "or both positive (on/off windows)"
            )
        if self.pattern == "phased":
            if not self.phase_patterns or self.phase_length < 1:
                raise ConfigurationError(
                    "pattern 'phased' needs non-empty phase_patterns and "
                    "phase_length >= 1"
                )
            for p in self.phase_patterns:
                if p not in BASE_PATTERN_CHOICES:
                    raise ConfigurationError(
                        f"phase pattern {p!r} must be one of "
                        f"{BASE_PATTERN_CHOICES} (no nesting)"
                    )
        elif self.phase_patterns or self.phase_length:
            raise ConfigurationError(
                "phase_patterns/phase_length are only valid with "
                "pattern 'phased'"
            )
        if self.pattern == "multi_job":
            if not self.jobs:
                raise ConfigurationError(
                    "pattern 'multi_job' needs at least one JobSpec in jobs"
                )
        elif self.jobs:
            raise ConfigurationError("jobs is only valid with pattern 'multi_job'")


@dataclass(frozen=True)
class SimulationConfig:
    """Full simulation bundle: network + router + traffic + timing + seed.

    Attributes
    ----------
    warmup_cycles:
        Cycles simulated before statistics collection starts.
    measure_cycles:
        Length of the measurement window (paper: 15,000).
    routing:
        Routing mechanism name, one of
        ``min``, ``obl-rrg``, ``obl-crg``, ``src-rrg``, ``src-crg``,
        ``in-trns-rrg``, ``in-trns-crg``, ``in-trns-mm``
        (matching the paper's figure legends).
    seed:
        Master seed; child streams are derived per component.
    misroute_threshold:
        In-transit adaptive congestion threshold as a fraction of the
        minimal port's credit capacity (Table I: 43%).
    pb_threshold_local / pb_threshold_global:
        PiggyBack saturation offsets in *packets* (Table I: T=5 local,
        T=3 global).
    pb_update_period:
        Cycles between group-wide saturation-bit snapshots; models the
        piggybacked-ECN propagation delay.
    deadlock_cycles:
        Watchdog: raise :class:`repro.errors.SimulationError` if packets
        are in flight but nothing is delivered or moved for this many
        cycles.
    oracle:
        Run the :class:`repro.metrics.oracle.SimOracle` alongside the
        stats collector: after the measurement window the network is
        drained and end-of-run conservation invariants (packet
        conservation, credit balance, per-job closure) are verified,
        raising :class:`repro.errors.OracleError` on any violation.
        Draining changes ``in_flight_at_end``/``events_processed`` (never
        the measurement-window metrics), so the flag is part of the
        config digest.
    """

    network: NetworkConfig = field(default_factory=NetworkConfig)
    router: RouterConfig = field(default_factory=RouterConfig)
    traffic: TrafficConfig = field(default_factory=TrafficConfig)
    routing: str = "min"
    warmup_cycles: int = 2000
    measure_cycles: int = 15000
    seed: int = 1
    misroute_threshold: float = 0.43
    pb_threshold_local: int = 5
    pb_threshold_global: int = 3
    pb_update_period: int = 8
    deadlock_cycles: int = 50_000
    oracle: bool = False

    _ROUTINGS = (
        "min",
        "obl-rrg",
        "obl-crg",
        "src-rrg",
        "src-crg",
        "in-trns-rrg",
        "in-trns-crg",
        "in-trns-mm",
    )

    def __post_init__(self) -> None:
        if self.routing not in self._ROUTINGS:
            raise ConfigurationError(
                f"unknown routing {self.routing!r}; expected one of {self._ROUTINGS}"
            )
        if self.warmup_cycles < 0 or self.measure_cycles < 1:
            raise ConfigurationError(
                "warmup_cycles must be >= 0 and measure_cycles >= 1"
            )
        if not (0.0 < self.misroute_threshold < 1.0):
            raise ConfigurationError(
                f"misroute_threshold must be in (0,1), got {self.misroute_threshold}"
            )
        for name in ("pb_threshold_local", "pb_threshold_global"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")
        if self.pb_update_period < 1:
            raise ConfigurationError("pb_update_period must be >= 1 cycle")
        if self.deadlock_cycles < 1000:
            raise ConfigurationError("deadlock_cycles must be >= 1000")
        # Cross-checks: the traffic pattern must fit the topology.
        patterns_used = (
            self.traffic.phase_patterns
            if self.traffic.pattern == "phased"
            else (self.traffic.pattern,)
        )
        if "adversarial" in patterns_used:
            if abs(self.traffic.adv_offset) >= self.network.groups:
                raise ConfigurationError(
                    "adv_offset must be smaller than the number of groups"
                )
        if "job" in patterns_used:
            jg = self.traffic.job_groups or (self.network.h + 1)
            if jg > self.network.groups:
                raise ConfigurationError(
                    f"job_groups={jg} exceeds total groups {self.network.groups}"
                )
        if self.traffic.pattern == "multi_job":
            self._validate_jobs()
        if self.network.num_nodes < 2:
            raise ConfigurationError("network must have at least 2 nodes")

    def _validate_jobs(self) -> None:
        """Multi-job placement must fit the network on disjoint groups."""
        resolve_job_groups(
            self.traffic.jobs,
            self.network.groups,
            self.network.a * self.network.p,
        )

    # -- convenience --------------------------------------------------------
    @property
    def total_cycles(self) -> int:
        """End-of-simulation time (warmup + measurement)."""
        return self.warmup_cycles + self.measure_cycles

    def with_(self, **kwargs) -> "SimulationConfig":
        """Return a copy with top-level fields replaced (frozen-safe)."""
        return replace(self, **kwargs)

    def with_traffic(self, **kwargs) -> "SimulationConfig":
        """Return a copy with traffic fields replaced."""
        return replace(self, traffic=replace(self.traffic, **kwargs))

    def with_router(self, **kwargs) -> "SimulationConfig":
        """Return a copy with router fields replaced."""
        return replace(self, router=replace(self.router, **kwargs))

    def with_network(self, **kwargs) -> "SimulationConfig":
        """Return a copy with network fields replaced."""
        return replace(self, network=replace(self.network, **kwargs))


# ---------------------------------------------------------------------------
# Presets
# ---------------------------------------------------------------------------

def paper_config(**overrides) -> SimulationConfig:
    """The paper's full-size system: h=6, a=12, p=6, 73 groups, 5,256 nodes.

    Warning: a load sweep at this scale in pure Python takes hours; it is
    exercised by one smoke benchmark only.  Keyword overrides are applied
    with :meth:`SimulationConfig.with_`.
    """
    cfg = SimulationConfig(
        network=NetworkConfig(p=6, a=12, h=6),
        warmup_cycles=5000,
        measure_cycles=15000,
    )
    return cfg.with_(**overrides) if overrides else cfg


def medium_config(**overrides) -> SimulationConfig:
    """A balanced h=3 Dragonfly: a=6, p=3, 19 groups, 342 nodes."""
    cfg = SimulationConfig(
        network=NetworkConfig(p=3, a=6, h=3),
        warmup_cycles=1500,
        measure_cycles=4000,
    )
    return cfg.with_(**overrides) if overrides else cfg


def small_config(**overrides) -> SimulationConfig:
    """The paper's Fig. 1 scale: h=2, a=4, p=2, 9 groups, 72 nodes.

    This is the default experiment scale (see DESIGN.md Section 4 for the
    substitution rationale: every mechanism and the bottleneck-router
    phenomenon exist identically at h=2).
    """
    cfg = SimulationConfig(
        network=NetworkConfig(p=2, a=4, h=2),
        warmup_cycles=1500,
        measure_cycles=4000,
    )
    return cfg.with_(**overrides) if overrides else cfg


def tiny_config(**overrides) -> SimulationConfig:
    """Minimal h=1 Dragonfly (a=2, p=1, 3 groups, 6 nodes) for unit tests."""
    cfg = SimulationConfig(
        network=NetworkConfig(
            p=1, a=2, h=1, local_link_latency=2, global_link_latency=5
        ),
        warmup_cycles=200,
        measure_cycles=800,
    )
    return cfg.with_(**overrides) if overrides else cfg
