"""repro — reproduction of "Throughput Unfairness in Dragonfly Networks
under Realistic Traffic Patterns" (Fuentes et al., IEEE CLUSTER 2015).

A packet-level discrete-event simulator of canonical Dragonfly networks
with oblivious, source-adaptive (PiggyBack) and in-transit adaptive
(PAR+OLM) routing, the RRG/CRG/NRG/MM global misrouting policies, the
UN / ADV+k / ADVc synthetic traffic patterns, and the throughput-fairness
instrumentation the paper builds its analysis on.

Quickstart
----------
>>> from repro import small_config, run_simulation
>>> cfg = small_config(routing="in-trns-mm").with_traffic(
...     pattern="advc", load=0.4)
>>> result = run_simulation(cfg)
>>> result.accepted_load           # doctest: +SKIP
>>> result.fairness.max_min_ratio  # doctest: +SKIP

See README.md for the full tour and benchmarks/ for the per-figure
reproduction harness.
"""

from repro.config import (
    JobSpec,
    NetworkConfig,
    RouterConfig,
    SimulationConfig,
    TrafficConfig,
    medium_config,
    paper_config,
    small_config,
    tiny_config,
)
from repro.core import (
    LoadSweepResult,
    Simulation,
    SimulationResult,
    SweepPoint,
    run_load_sweep,
    run_point,
    run_simulation,
)
from repro.errors import (
    AnalysisError,
    ConfigurationError,
    FlowControlError,
    OracleError,
    ReproError,
    RoutingError,
    SimulationError,
    TopologyError,
)
from repro.exec import ExperimentPlan, PlanResult, ResultStore, Runner, Shard
from repro.metrics import (
    FairnessMetrics,
    OracleReport,
    SimOracle,
    fairness_from_counts,
)
from repro.routing import ROUTING_NAMES
from repro.topology import DragonflyTopology
from repro.traffic import (
    SCENARIOS,
    Scenario,
    get_scenario,
    pattern_name,
    scenario_names,
)

__version__ = "1.0.0"

__all__ = [
    "AnalysisError",
    "ConfigurationError",
    "DragonflyTopology",
    "ExperimentPlan",
    "FairnessMetrics",
    "FlowControlError",
    "JobSpec",
    "LoadSweepResult",
    "NetworkConfig",
    "OracleError",
    "OracleReport",
    "PlanResult",
    "ROUTING_NAMES",
    "ReproError",
    "ResultStore",
    "RouterConfig",
    "RoutingError",
    "Runner",
    "SCENARIOS",
    "Scenario",
    "Shard",
    "SimOracle",
    "Simulation",
    "SimulationConfig",
    "SimulationError",
    "SimulationResult",
    "SweepPoint",
    "TopologyError",
    "TrafficConfig",
    "fairness_from_counts",
    "get_scenario",
    "medium_config",
    "paper_config",
    "pattern_name",
    "run_load_sweep",
    "run_point",
    "run_simulation",
    "scenario_names",
    "small_config",
    "tiny_config",
]
