"""Generators for the paper's figure data (2/3/4 and their 5/6 twins).

Each ``figureN_*`` function runs the simulations and returns plain data;
each ``format_figureN`` renders that data as text (numeric series plus an
ASCII plot) the way the benchmark harness prints it.  Figures 5 and 6 are
Figures 2 and 4 with ``transit_priority=False``, so the same generators
serve both (the caller flips the config).
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.config import SimulationConfig
from repro.core.experiment import LoadSweepResult, run_load_sweep, run_point
from repro.utils.ascii_plot import ascii_plot
from repro.utils.tables import format_table

__all__ = [
    "figure2_sweeps",
    "figure3_breakdown",
    "figure4_injections",
    "format_figure2",
    "format_figure3",
    "format_figure4",
]

#: the mechanisms plotted in Figures 2/5, in legend order
FIGURE2_MECHANISMS = (
    "min",
    "obl-crg",
    "src-rrg",
    "src-crg",
    "in-trns-rrg",
    "in-trns-crg",
    "in-trns-mm",
)


def figure2_sweeps(
    base: SimulationConfig,
    loads: Sequence[float],
    *,
    mechanisms: Sequence[str] = FIGURE2_MECHANISMS,
    seeds: int = 1,
) -> dict[str, LoadSweepResult]:
    """One latency/throughput curve per mechanism for one traffic pattern.

    ``base`` carries the pattern and priority setting; pass
    ``base.with_router(transit_priority=False)`` for Figure 5.
    """
    out: dict[str, LoadSweepResult] = {}
    for mech in mechanisms:
        out[mech] = run_load_sweep(
            base.with_(routing=mech), loads, seeds=seeds
        )
    return out


def format_figure2(
    sweeps: dict[str, LoadSweepResult], *, title: str
) -> str:
    """Render a Figure-2 panel pair (latency + throughput) as text."""
    lat_rows = []
    thr_rows = []
    for mech, sweep in sweeps.items():
        for pt in sweep.points:
            lat_rows.append([mech, f"{pt.offered_load:.2f}", pt.avg_latency])
            thr_rows.append(
                [mech, f"{pt.offered_load:.2f}", pt.accepted_load]
            )
    parts = [
        format_table(
            ["mechanism", "offered", "latency(cyc)"],
            lat_rows,
            title=f"{title} — average packet latency",
        ),
        "",
        format_table(
            ["mechanism", "offered", "accepted"],
            thr_rows,
            title=f"{title} — accepted load",
        ),
        "",
        ascii_plot(
            {m: s.latency_series() for m, s in sweeps.items()},
            title=f"{title}: latency vs offered load",
            xlabel="offered load (phits/node/cycle)",
        ),
        "",
        ascii_plot(
            {m: s.throughput_series() for m, s in sweeps.items()},
            title=f"{title}: accepted vs offered load",
            xlabel="offered load (phits/node/cycle)",
        ),
    ]
    return "\n".join(parts)


def figure3_breakdown(
    base: SimulationConfig,
    loads: Sequence[float],
    *,
    seeds: int = 1,
) -> list[tuple[float, dict[str, float]]]:
    """Latency components vs injection rate for in-transit-MM under ADVc."""
    cfg = base.with_(routing="in-trns-mm").with_traffic(pattern="advc")
    out = []
    for load in loads:
        pt = run_point(cfg.with_traffic(load=load), seeds=seeds)
        out.append((pt.offered_load, dict(pt.latency_breakdown)))
    return out


def format_figure3(
    breakdown: list[tuple[float, dict[str, float]]]
) -> str:
    """Render the Figure-3 stacked components as a table + plot."""
    comp_order = ["base", "misroute", "local", "global", "injection"]
    rows = [
        [f"{load:.2f}"] + [comps[c] for c in comp_order] + [sum(comps.values())]
        for load, comps in breakdown
    ]
    table = format_table(
        ["load", "base", "misroute", "cong-local", "cong-global",
         "inj-queue", "total"],
        rows,
        title="Figure 3 — latency breakdown, In-Transit-MM under ADVc",
    )
    series = {
        c: [(load, comps[c]) for load, comps in breakdown]
        for c in comp_order
    }
    return table + "\n\n" + ascii_plot(
        series,
        title="Figure 3: latency components vs injection rate",
        xlabel="offered load (phits/node/cycle)",
    )


def figure4_injections(
    base: SimulationConfig,
    *,
    mechanisms: Sequence[str] = FIGURE2_MECHANISMS[1:],
    load: float = 0.4,
    group: int = 0,
    seeds: int = 1,
) -> dict[str, list[float]]:
    """Injected packets per router of one group under ADVc at *load*.

    Returns mechanism -> per-router (R0..R{a-1}) injection counts.
    For Figure 6, pass a ``base`` with ``transit_priority=False``.
    """
    a = base.network.a
    out: dict[str, list[float]] = {}
    for mech in mechanisms:
        cfg = base.with_(routing=mech).with_traffic(pattern="advc", load=load)
        per_router = _per_router_from_point(cfg, seeds)
        out[mech] = per_router[group * a : (group + 1) * a]
    return out


def _per_router_from_point(cfg: SimulationConfig, seeds: int) -> list[float]:
    """Seed-averaged per-router injection counts for one config."""
    from repro.core.simulation import run_simulation
    from repro.utils.rng import split_seed

    results = [
        run_simulation(cfg.with_(seed=split_seed(cfg.seed, 100 + s)))
        for s in range(seeds)
    ]
    n = len(results)
    return [
        sum(r.injected_per_router[i] for r in results) / n
        for i in range(len(results[0].injected_per_router))
    ]


def format_figure4(
    injections: dict[str, list[float]], *, title: str
) -> str:
    """Render the per-router injection bars as a table."""
    a = len(next(iter(injections.values())))
    headers = ["mechanism"] + [f"R{i}" for i in range(a)]
    rows = [[mech] + list(counts) for mech, counts in injections.items()]
    note = (
        f"(R{a-1} is the ADVc bottleneck router under the palmtree "
        "arrangement; R0 receives the minimal traffic from other groups)"
    )
    return format_table(headers, rows, title=title, ndigits=1) + "\n" + note
