"""Generators for the paper's figure data (2/3/4 and their 5/6 twins).

Each ``figureN_*`` function runs the simulations and returns plain data;
each ``format_figureN`` renders that data as text (numeric series plus an
ASCII plot) the way the benchmark harness prints it.  Figures 5 and 6 are
Figures 2 and 4 with ``transit_priority=False``, so the same generators
serve both (the caller flips the config).

All generators build one :class:`repro.exec.plan.ExperimentPlan` covering
every cell of the figure and submit it to a single
:class:`repro.exec.runner.Runner`, so ``jobs=N`` parallelises across
mechanisms, loads and seeds at once; ``store`` enables on-disk result
caching.  ``offline=True`` renders purely from the store — e.g. from a
store merged out of sharded CI runs — and fails instead of simulating
if any cell is missing.
"""

from __future__ import annotations

import os
from collections.abc import Sequence

from repro.config import SimulationConfig
from repro.exec.aggregate import LoadSweepResult, average_injections
from repro.exec.plan import ExperimentPlan
from repro.exec.runner import RetryPolicy, Runner
from repro.exec.store import ResultStore
from repro.utils.ascii_plot import ascii_plot
from repro.utils.tables import format_table

__all__ = [
    "figure2_sweeps",
    "figure3_breakdown",
    "figure4_injections",
    "format_figure2",
    "format_figure3",
    "format_figure4",
]

#: the mechanisms plotted in Figures 2/5, in legend order
FIGURE2_MECHANISMS = (
    "min",
    "obl-crg",
    "src-rrg",
    "src-crg",
    "in-trns-rrg",
    "in-trns-crg",
    "in-trns-mm",
)


def figure2_sweeps(
    base: SimulationConfig,
    loads: Sequence[float],
    *,
    mechanisms: Sequence[str] = FIGURE2_MECHANISMS,
    seeds: int = 1,
    jobs: int = 1,
    store: ResultStore | str | os.PathLike | None = None,
    offline: bool = False,
    retry: RetryPolicy | None = None,
    batch: int | None = None,
) -> dict[str, LoadSweepResult]:
    """One latency/throughput curve per mechanism for one traffic pattern.

    ``base`` carries the pattern and priority setting; pass
    ``base.with_router(transit_priority=False)`` for Figure 5.
    """
    plan = ExperimentPlan.merge(
        ExperimentPlan.sweep(base.with_(routing=mech), loads, seeds=seeds)
        for mech in mechanisms
    )
    res = Runner(
        jobs=jobs, store=store, offline=offline, retry=retry, batch=batch
    ).run(plan)
    res.raise_for_failures()
    return {mech: res.sweep(base.with_(routing=mech), loads) for mech in mechanisms}


def format_figure2(sweeps: dict[str, LoadSweepResult], *, title: str) -> str:
    """Render a Figure-2 panel pair (latency + throughput) as text."""
    lat_rows = []
    thr_rows = []
    for mech, sweep in sweeps.items():
        for pt in sweep.points:
            lat_rows.append([mech, f"{pt.offered_load:.2f}", pt.avg_latency])
            thr_rows.append([mech, f"{pt.offered_load:.2f}", pt.accepted_load])
    parts = [
        format_table(
            ["mechanism", "offered", "latency(cyc)"],
            lat_rows,
            title=f"{title} — average packet latency",
        ),
        "",
        format_table(
            ["mechanism", "offered", "accepted"],
            thr_rows,
            title=f"{title} — accepted load",
        ),
        "",
        ascii_plot(
            {m: s.latency_series() for m, s in sweeps.items()},
            title=f"{title}: latency vs offered load",
            xlabel="offered load (phits/node/cycle)",
        ),
        "",
        ascii_plot(
            {m: s.throughput_series() for m, s in sweeps.items()},
            title=f"{title}: accepted vs offered load",
            xlabel="offered load (phits/node/cycle)",
        ),
    ]
    return "\n".join(parts)


def figure3_breakdown(
    base: SimulationConfig,
    loads: Sequence[float],
    *,
    seeds: int = 1,
    jobs: int = 1,
    store: ResultStore | str | os.PathLike | None = None,
    offline: bool = False,
    retry: RetryPolicy | None = None,
) -> list[tuple[float, dict[str, float]]]:
    """Latency components vs injection rate for in-transit-MM under ADVc."""
    cfg = base.with_(routing="in-trns-mm").with_traffic(pattern="advc")
    plan = ExperimentPlan.sweep(cfg, loads, seeds=seeds)
    res = Runner(jobs=jobs, store=store, offline=offline, retry=retry).run(plan)
    res.raise_for_failures()
    out = []
    for load in loads:
        pt = res.point(cfg.with_traffic(load=load))
        out.append((pt.offered_load, dict(pt.latency_breakdown)))
    return out


def format_figure3(breakdown: list[tuple[float, dict[str, float]]]) -> str:
    """Render the Figure-3 stacked components as a table + plot."""
    comp_order = ["base", "misroute", "local", "global", "injection"]
    rows = [
        [f"{load:.2f}"] + [comps[c] for c in comp_order] + [sum(comps.values())]
        for load, comps in breakdown
    ]
    table = format_table(
        ["load", "base", "misroute", "cong-local", "cong-global", "inj-queue", "total"],
        rows,
        title="Figure 3 — latency breakdown, In-Transit-MM under ADVc",
    )
    series = {c: [(load, comps[c]) for load, comps in breakdown] for c in comp_order}
    return table + "\n\n" + ascii_plot(
        series,
        title="Figure 3: latency components vs injection rate",
        xlabel="offered load (phits/node/cycle)",
    )


def figure4_injections(
    base: SimulationConfig,
    *,
    mechanisms: Sequence[str] = FIGURE2_MECHANISMS[1:],
    load: float = 0.4,
    group: int = 0,
    seeds: int = 1,
    jobs: int = 1,
    store: ResultStore | str | os.PathLike | None = None,
    offline: bool = False,
    retry: RetryPolicy | None = None,
) -> dict[str, list[float]]:
    """Injected packets per router of one group under ADVc at *load*.

    Returns mechanism -> per-router (R0..R{a-1}) injection counts.
    For Figure 6, pass a ``base`` with ``transit_priority=False``.
    """
    a = base.network.a

    def point_cfg(mech: str) -> SimulationConfig:
        return base.with_(routing=mech).with_traffic(pattern="advc", load=load)

    plan = ExperimentPlan.merge(
        ExperimentPlan.point(point_cfg(mech), seeds=seeds)
        for mech in mechanisms
    )
    res = Runner(jobs=jobs, store=store, offline=offline, retry=retry).run(plan)
    res.raise_for_failures()
    out: dict[str, list[float]] = {}
    for mech in mechanisms:
        per_router = average_injections(res.results_for(point_cfg(mech)))
        out[mech] = per_router[group * a : (group + 1) * a]
    return out


def format_figure4(injections: dict[str, list[float]], *, title: str) -> str:
    """Render the per-router injection bars as a table."""
    a = len(next(iter(injections.values())))
    headers = ["mechanism"] + [f"R{i}" for i in range(a)]
    rows = [[mech] + list(counts) for mech, counts in injections.items()]
    note = (
        f"(R{a-1} is the ADVc bottleneck router under the palmtree "
        "arrangement; R0 receives the minimal traffic from other groups)"
    )
    return format_table(headers, rows, title=title, ndigits=1) + "\n" + note
