"""Generators for the paper's fairness tables (II and III).

:func:`fairness_table` runs the ADVc @ 0.4 experiment for every mechanism
and returns the three metrics per row; :func:`format_fairness_table`
renders them next to the paper's values so shape can be eyeballed
directly in the benchmark output.
"""

from __future__ import annotations

import os
from collections.abc import Sequence

from repro.analysis.paper_reference import PAPER_TABLE_II, PAPER_TABLE_III
from repro.config import SimulationConfig
from repro.exec.plan import ExperimentPlan
from repro.exec.runner import Runner
from repro.exec.store import ResultStore
from repro.metrics.fairness import FairnessMetrics
from repro.utils.tables import format_table

__all__ = ["fairness_table", "format_fairness_table", "TABLE_MECHANISMS"]

#: the rows of Tables II/III, in paper order
TABLE_MECHANISMS = (
    "obl-rrg",
    "obl-crg",
    "src-rrg",
    "src-crg",
    "in-trns-rrg",
    "in-trns-crg",
    "in-trns-mm",
)


def fairness_table(
    base: SimulationConfig,
    *,
    mechanisms: Sequence[str] = TABLE_MECHANISMS,
    load: float = 0.4,
    seeds: int = 1,
    jobs: int = 1,
    store: ResultStore | str | os.PathLike | None = None,
    offline: bool = False,
) -> dict[str, FairnessMetrics]:
    """Run ADVc at *load* for each mechanism; return the fairness metrics.

    ``base.router.transit_priority`` decides whether this is Table II
    (True) or Table III (False).  All mechanism/seed cells go into one
    plan, so ``jobs=N`` parallelises the whole table.
    """

    def point_cfg(mech: str) -> SimulationConfig:
        return base.with_(routing=mech).with_traffic(pattern="advc", load=load)

    plan = ExperimentPlan.merge(
        ExperimentPlan.point(point_cfg(mech), seeds=seeds)
        for mech in mechanisms
    )
    res = Runner(jobs=jobs, store=store, offline=offline).run(plan)
    return {mech: res.point(point_cfg(mech)).fairness for mech in mechanisms}


def format_fairness_table(
    measured: dict[str, FairnessMetrics], *, priority: bool
) -> str:
    """Render measured metrics beside the paper's Table II/III values."""
    ref = PAPER_TABLE_II if priority else PAPER_TABLE_III
    which = "Table II (with transit priority)" if priority else (
        "Table III (without transit priority)"
    )
    rows = []
    for mech, fm in measured.items():
        prow = ref.get(mech)
        rows.append(
            [
                mech,
                fm.min_injected,
                fm.max_min_ratio,
                fm.cov,
                fm.jain,
                prow[0] if prow else "-",
                prow[1] if prow else "-",
                prow[2] if prow else "-",
            ]
        )
    return format_table(
        [
            "mechanism",
            "min-inj",
            "max/min",
            "cov",
            "jain",
            "paper:min",
            "paper:max/min",
            "paper:cov",
        ],
        rows,
        title=f"{which} — ADVc @ 0.4 phits/(node*cycle)",
    )
