"""Reproduction of the paper's figures and tables from simulation results."""

from repro.analysis.paper_reference import (
    PAPER_TABLE_II,
    PAPER_TABLE_III,
    min_throughput_bound,
)
from repro.analysis.figures import (
    figure2_sweeps,
    figure3_breakdown,
    figure4_injections,
    format_figure2,
    format_figure3,
    format_figure4,
)
from repro.analysis.interference import (
    interference_report,
    job_router_ids,
    per_job_counts,
)
from repro.analysis.tables import fairness_table, format_fairness_table

__all__ = [
    "PAPER_TABLE_II",
    "PAPER_TABLE_III",
    "fairness_table",
    "figure2_sweeps",
    "figure3_breakdown",
    "figure4_injections",
    "format_fairness_table",
    "format_figure2",
    "format_figure3",
    "format_figure4",
    "interference_report",
    "job_router_ids",
    "min_throughput_bound",
    "per_job_counts",
]
