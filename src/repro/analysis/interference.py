"""Per-job interference analysis for multi-job workloads.

A ``multi_job`` run already records everything needed to slice the
network per job: each job occupies whole groups, so the per-router
injection/delivery counters map onto jobs exactly.  This module turns
one (or a sweep of) :class:`repro.core.results.SimulationResult` into
per-job series — how much each job injected and received inside the
measurement window — and renders the interference table the
``multi_job_interference`` benchmark profile reports.
"""

from __future__ import annotations

import os
from collections.abc import Sequence

from repro.config import JobSpec, NetworkConfig, SimulationConfig
from repro.core.results import SimulationResult
from repro.errors import AnalysisError
from repro.exec.plan import ExperimentPlan
from repro.exec.runner import Runner
from repro.exec.store import ResultStore
from repro.utils.tables import format_table

__all__ = [
    "interference_report",
    "job_router_ids",
    "per_job_counts",
]


def job_router_ids(network: NetworkConfig, spec: JobSpec) -> list[int]:
    """Router ids covered by *spec*'s (wrapping) group range."""
    a = network.a
    total = network.groups
    out: list[int] = []
    for k in range(spec.groups):
        g = (spec.first_group + k) % total
        out.extend(range(g * a, (g + 1) * a))
    return out


def per_job_counts(result: SimulationResult) -> list[dict]:
    """Per-job window counters of one ``multi_job`` run.

    Returns one dict per job: ``job`` (index), ``pattern``, ``nodes``,
    ``injected`` and ``delivered`` packet counts inside the measurement
    window, summed over the job's routers.
    """
    jobs = result.config.traffic.jobs
    if not jobs:
        raise AnalysisError(
            "per_job_counts needs a multi_job result (config.traffic.jobs "
            "is empty)"
        )
    network = result.config.network
    out = []
    for idx, spec in enumerate(jobs):
        routers = job_router_ids(network, spec)
        out.append(
            {
                "job": idx,
                "pattern": spec.pattern,
                "nodes": len(routers) * network.p,
                "injected": sum(result.injected_per_router[r] for r in routers),
                "delivered": sum(result.delivered_per_router[r] for r in routers),
            }
        )
    return out


def interference_report(
    base: SimulationConfig,
    loads: Sequence[float],
    *,
    seeds: int = 1,
    jobs: int = 1,
    store: ResultStore | str | os.PathLike | None = None,
    offline: bool = False,
) -> str:
    """Sweep a ``multi_job`` config over *loads* and render per-job rows.

    ``base`` must carry a ``multi_job`` traffic config (e.g. the
    ``multi_job_interference`` scenario applied to a preset).  Each row
    shows one (load, job) pair: packets the job injected and received in
    the window, the job's share of all deliveries, and the run's oracle
    verdict when the cells were audited.
    """
    if not base.traffic.jobs:
        raise AnalysisError("interference_report needs a multi_job base config")
    plan = ExperimentPlan.sweep(base, loads, seeds=seeds)
    res = Runner(jobs=jobs, store=store, offline=offline).run(plan)
    rows = []
    for load in loads:
        cfg = base.with_traffic(load=load)
        results = res.results_for(cfg)
        n = len(results)
        total = sum(r.delivered_packets for r in results) / n
        per_seed = [per_job_counts(r) for r in results]
        verdicts = [r.oracle["passed"] for r in results if r.oracle]
        oracle = "-" if not verdicts else ("ok" if all(verdicts) else "FAIL")
        for j in range(len(per_seed[0])):
            injected = sum(p[j]["injected"] for p in per_seed) / n
            delivered = sum(p[j]["delivered"] for p in per_seed) / n
            rows.append(
                [
                    f"{load:.2f}",
                    f"job{j}",
                    per_seed[0][j]["pattern"],
                    injected,
                    delivered,
                    delivered / total if total else 0.0,
                    oracle,
                ]
            )
    return format_table(
        ["load", "job", "pattern", "injected", "delivered", "share", "oracle"],
        rows,
        title=(
            f"Multi-job interference — {base.routing}, "
            f"{len(base.traffic.jobs)} jobs, seeds={seeds}"
        ),
        ndigits=1,
    )
