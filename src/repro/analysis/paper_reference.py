"""The paper's reported numbers, for side-by-side comparison.

Absolute values are not expected to match (different scale, packet-level
model — see DESIGN.md Section 4); they anchor the *shape* comparisons in
EXPERIMENTS.md and the benchmark output.
"""

from __future__ import annotations

from repro.config import NetworkConfig

__all__ = ["PAPER_TABLE_II", "PAPER_TABLE_III", "min_throughput_bound"]

#: Table II — fairness under ADVc @ 0.4 load *with* transit priority
#: (mechanism -> (Min inj, Max/Min, CoV)); h=6, 15,000 cycles, 3 seeds.
PAPER_TABLE_II: dict[str, tuple[float, float, float]] = {
    "obl-rrg": (4079.0, 1.149, 0.0175),
    "obl-crg": (4307.0, 1.095, 0.0145),
    "src-rrg": (2134.0, 2.196, 0.1217),
    "src-crg": (847.0, 2.735, 0.1029),
    "in-trns-rrg": (37.0, 585.69, 0.2866),
    "in-trns-crg": (31.67, 185.60, 0.2861),
    "in-trns-mm": (69.33, 72.576, 0.2858),
}

#: Table III — same experiment *without* transit priority.
PAPER_TABLE_III: dict[str, tuple[float, float, float]] = {
    "obl-rrg": (3937.0, 1.190, 0.0173),
    "obl-crg": (4314.0, 1.093, 0.0144),
    "src-rrg": (2247.33, 2.086, 0.1194),
    "src-crg": (690.5, 6.673, 0.5562),
    "in-trns-rrg": (2553.33, 1.850, 0.1106),
    "in-trns-crg": (2549.33, 1.852, 0.1111),
    "in-trns-mm": (2554.33, 1.843, 0.1101),
}


def min_throughput_bound(net: NetworkConfig, pattern: str) -> float:
    """Analytic MIN-routing throughput cap in phits/(node*cycle).

    Section III: under ADV+k all of a group's traffic crosses one global
    link shared by ``a*p`` nodes -> ``1/(a*p)``; under ADVc the ``h``
    links of the bottleneck router share the load -> ``h/(a*p)``.
    Uniform traffic is not gateway-limited (returns 1.0).
    """
    if pattern == "adversarial":
        return 1.0 / (net.a * net.p)
    if pattern == "advc":
        return net.h / (net.a * net.p)
    if pattern == "uniform":
        return 1.0
    raise ValueError(f"no analytic MIN bound for pattern {pattern!r}")
