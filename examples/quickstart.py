#!/usr/bin/env python
"""Quickstart: simulate a Dragonfly network and read the results.

Builds the paper's Fig. 1-scale network (h=2, 9 groups, 72 nodes), runs
uniform traffic at 40% load under minimal routing, and prints throughput,
latency (with the Figure-3 component breakdown) and fairness metrics.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import run_simulation, small_config


def main() -> None:
    cfg = small_config(routing="min").with_traffic(pattern="uniform", load=0.4)
    print(f"Network : {cfg.network.describe()}")
    print(
        f"Routing : {cfg.routing}   pattern: {cfg.traffic.pattern}   "
        f"load: {cfg.traffic.load}"
    )
    print("Simulating", cfg.total_cycles, "cycles ...")

    result = run_simulation(cfg)

    print()
    print(f"offered load  : {result.offered_load:.3f} phits/(node*cycle)")
    print(f"accepted load : {result.accepted_load:.3f} phits/(node*cycle)")
    print(
        f"avg latency   : {result.avg_latency:.1f} cycles "
        f"(std {result.latency_std:.1f}, max {result.max_latency:.0f})"
    )
    print("latency breakdown (cycles):")
    for name, value in result.latency_breakdown.items():
        print(f"    {name:10s} {value:8.2f}")
    print()
    f = result.fairness
    print("fairness over per-router injections:")
    print(f"    min injected : {f.min_injected:.0f}")
    print(f"    max/min      : {f.max_min_ratio:.3f}")
    print(f"    CoV          : {f.cov:.4f}")
    print(f"    Jain index   : {f.jain:.4f}")
    print()
    print("group 0 injections per router:", result.group_injections(0))


if __name__ == "__main__":
    main()
