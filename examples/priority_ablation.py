#!/usr/bin/env python
"""Transit-over-injection priority ablation (paper Figures 4 vs 6).

Runs in-transit adaptive (MM) and source-adaptive (CRG) routing under
ADVc with and without the allocator priority, showing the paper's two
headline effects:

* with the priority, the bottleneck router is starved (it cannot win
  allocation against in-transit traffic on its overlapping global links);
* without it, in-transit fairness recovers substantially, while Src-CRG
  flips pathology — the bottleneck router starts *over*-injecting because
  it senses its own links' saturation instantly and grabs every free slot.

The six (mechanism, priority) cells form one declarative plan executed by
the parallel runner across all cores; results are independent of the
worker count (per-cell seeds are derived from the master seed up front).

Run:  python examples/priority_ablation.py
"""

from __future__ import annotations

from repro import ExperimentPlan, Runner, small_config
from repro.utils.tables import format_table


def main() -> None:
    base = small_config().with_traffic(pattern="advc", load=0.4)
    a = base.network.a
    print(base.network.describe())
    print(f"ADVc @ 0.4 — bottleneck router is R{a-1}\n")

    cases = [
        (mech, priority)
        for mech in ("in-trns-mm", "in-trns-crg", "src-crg")
        for priority in (True, False)
    ]

    def cfg_for(mech: str, priority: bool):
        return base.with_(routing=mech).with_router(transit_priority=priority)

    plan = ExperimentPlan.merge(
        ExperimentPlan.point(cfg_for(mech, priority)) for mech, priority in cases
    )
    runner = Runner()  # jobs defaults to all cores
    print(f"running {len(plan)} cells with jobs={runner.jobs} ...\n")
    res = runner.run(plan)

    rows = []
    profiles = []
    for mech, priority in cases:
        r = res.results_for(cfg_for(mech, priority))[0]
        f = r.fairness
        rows.append(
            [
                mech,
                "on" if priority else "off",
                r.accepted_load,
                f.min_injected,
                f.max_min_ratio,
                f.cov,
            ]
        )
        profiles.append(
            [mech, "on" if priority else "off"]
            + list(r.group_injections(0))
        )

    print(
        format_table(
            ["mechanism", "priority", "accepted", "min-inj", "max/min", "CoV"],
            rows,
            title="Fairness with vs without transit-over-injection priority",
        )
    )
    print()
    print(
        format_table(
            ["mechanism", "priority"] + [f"R{i}" for i in range(a)],
            profiles,
            title="Group 0 per-router injections (cf. paper Fig. 4 vs Fig. 6)",
        )
    )


if __name__ == "__main__":
    main()
