#!/usr/bin/env python
"""Throughput-fairness study across routing mechanisms (paper Fig. 4 / Table II).

Runs ADVc traffic at 0.4 phits/(node*cycle) under every mechanism the
paper evaluates, prints the per-router injection profile of one group and
the three fairness metrics of Tables II/III, with the transit-over-
injection priority enabled.

All mechanisms are submitted as one declarative plan and fanned out over
every core by the parallel runner — on an N-core machine this runs up to
N mechanisms concurrently, with results independent of the worker count.
(The plan protocol derives each cell's seed from the master seed, so the
numbers differ from calling ``run_simulation(cfg)`` directly.)

Run:  python examples/fairness_study.py
"""

from __future__ import annotations

from repro import ExperimentPlan, ROUTING_NAMES, Runner, small_config
from repro.utils.tables import format_table


def main() -> None:
    base = small_config().with_traffic(pattern="advc", load=0.4)
    a = base.network.a
    mechanisms = [m for m in ROUTING_NAMES if m != "min"]  # paper skips MIN
    print(base.network.describe())
    print(
        "ADVc @ 0.4, transit-over-injection priority ON "
        f"(bottleneck router: R{a-1})\n"
    )

    plan = ExperimentPlan.merge(
        ExperimentPlan.point(base.with_(routing=mech)) for mech in mechanisms
    )
    runner = Runner()  # jobs defaults to all cores
    print(f"running {len(plan)} cells with jobs={runner.jobs} ...\n")
    res = runner.run(plan)

    profile_rows = []
    metric_rows = []
    for mech in mechanisms:
        result = res.results_for(base.with_(routing=mech))[0]
        f = result.fairness
        profile_rows.append([mech] + list(result.group_injections(0)))
        metric_rows.append([mech, f.min_injected, f.max_min_ratio, f.cov, f.jain])

    print(
        format_table(
            ["mechanism"] + [f"R{i}" for i in range(a)],
            profile_rows,
            title="Injected packets per router of group 0 (cf. paper Fig. 4)",
        )
    )
    print()
    print(
        format_table(
            ["mechanism", "min-inj", "max/min", "CoV", "Jain"],
            metric_rows,
            title="Fairness metrics over all routers (cf. paper Table II)",
        )
    )
    print(
        "\nExpected shape: oblivious rows flat; adaptive rows depress "
        f"R{a-1}; in-transit+CRG worst (its non-minimal candidates are the "
        "very links congested by everyone else's minimal traffic)."
    )


if __name__ == "__main__":
    main()
