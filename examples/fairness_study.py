#!/usr/bin/env python
"""Throughput-fairness study across routing mechanisms (paper Fig. 4 / Table II).

Runs ADVc traffic at 0.4 phits/(node*cycle) under every mechanism the
paper evaluates, prints the per-router injection profile of one group and
the three fairness metrics of Tables II/III, with the transit-over-
injection priority enabled.

Run:  python examples/fairness_study.py
"""

from __future__ import annotations

from repro import ROUTING_NAMES, run_simulation, small_config
from repro.utils.tables import format_table


def main() -> None:
    base = small_config().with_traffic(pattern="advc", load=0.4)
    a = base.network.a
    print(base.network.describe())
    print(
        "ADVc @ 0.4, transit-over-injection priority ON "
        f"(bottleneck router: R{a-1})\n"
    )

    profile_rows = []
    metric_rows = []
    for mech in ROUTING_NAMES:
        if mech == "min":
            continue  # the paper's fairness figures skip MIN
        result = run_simulation(base.with_(routing=mech))
        f = result.fairness
        profile_rows.append([mech] + list(result.group_injections(0)))
        metric_rows.append(
            [mech, f.min_injected, f.max_min_ratio, f.cov, f.jain]
        )

    print(
        format_table(
            ["mechanism"] + [f"R{i}" for i in range(a)],
            profile_rows,
            title="Injected packets per router of group 0 (cf. paper Fig. 4)",
        )
    )
    print()
    print(
        format_table(
            ["mechanism", "min-inj", "max/min", "CoV", "Jain"],
            metric_rows,
            title="Fairness metrics over all routers (cf. paper Table II)",
        )
    )
    print(
        "\nExpected shape: oblivious rows flat; adaptive rows depress "
        f"R{a-1}; in-transit+CRG worst (its non-minimal candidates are the "
        "very links congested by everyone else's minimal traffic)."
    )


if __name__ == "__main__":
    main()
