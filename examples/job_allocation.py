#!/usr/bin/env python
"""The ADVc origin story: consecutive job placement (paper Section III).

A job scheduler allocates an application to h+1 *consecutive* groups of a
Dragonfly — the simplest allocation policy.  The application itself
communicates *uniformly*; nothing is adversarial.  Yet, seen from the
first group of the job, all inter-group traffic targets the next h groups
— whose global links all hang off one bottleneck router under the
palmtree arrangement.

This example runs (a) the explicit synthetic ADVc pattern, and (b) the
job-placement pattern (uniform traffic inside a job on h+1 consecutive
groups), and shows they produce the same bottleneck-router signature.

Run:  python examples/job_allocation.py
"""

from __future__ import annotations

from repro import run_simulation, small_config


def describe(label: str, result) -> None:
    a = result.config.network.a
    g0 = result.group_injections(0)
    print(f"--- {label} ---")
    print(f"accepted load : {result.accepted_load:.3f}")
    print(f"avg latency   : {result.avg_latency:.1f} cycles")
    print(f"group 0 injections per router: {g0}")
    bottleneck = g0[a - 1]
    peers = sum(g0[: a - 1]) / (a - 1)
    print(
        f"bottleneck router R{a-1}: {bottleneck:.0f} injections vs "
        f"{peers:.0f} mean of its peers "
        f"({bottleneck / peers:.2f}x)" if peers else ""
    )
    print()


def main() -> None:
    base = small_config(routing="src-crg")
    h = base.network.h
    print(base.network.describe())
    print(
        f"Job scenario: an application on the {h + 1} consecutive groups "
        f"0..{h}, uniform traffic between its processes.\n"
    )

    advc = run_simulation(base.with_traffic(pattern="advc", load=0.5))
    describe("synthetic ADVc (all groups loaded)", advc)

    job = run_simulation(base.with_traffic(pattern="job", load=0.7))
    describe(f"job placement (groups 0..{h}, uniform inside)", job)

    print(
        "Both runs depress the same router: the one owning the global\n"
        "links towards the next h groups.  A benign scheduling decision\n"
        "reproduces the adversarial pattern — the paper's argument for\n"
        "why ADVc is a *realistic* traffic pattern."
    )


if __name__ == "__main__":
    main()
